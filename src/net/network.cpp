#include "net/network.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/flight_recorder.h"
#include "transport/sim_transport.h"

namespace p2pdrm::net {

Network::Network(sim::Simulation& sim, LinkConfig default_link,
                 crypto::SecureRandom rng)
    : owned_transport_(std::make_unique<transport::SimTransport>(sim)),
      transport_(owned_transport_.get()),
      sim_(&sim),
      default_link_(default_link),
      rng_(std::move(rng)) {}

Network::Network(transport::Transport& transport, LinkConfig default_link,
                 crypto::SecureRandom rng)
    : transport_(&transport),
      default_link_(default_link),
      rng_(std::move(rng)) {
  if (auto* sim_backend = dynamic_cast<transport::SimTransport*>(&transport)) {
    sim_ = &sim_backend->sim();
  }
}

Network::~Network() = default;

sim::Simulation& Network::sim() const {
  if (sim_ == nullptr) {
    std::fprintf(stderr,
                 "Network::sim() called on a live transport backend; "
                 "use now()/post() instead\n");
    std::abort();
  }
  return *sim_;
}

void Network::attach(util::NodeId id, util::NetAddr addr, Node* node) {
  std::unique_lock<std::shared_mutex> lk(tables_mu_);
  const auto old = nodes_.find(id);
  if (old != nodes_.end()) by_addr_.erase(old->second.addr.ip);
  nodes_[id] = Binding{addr, node, std::nullopt};
  by_addr_[addr.ip] = id;
}

void Network::detach(util::NodeId id) {
  std::unique_lock<std::shared_mutex> lk(tables_mu_);
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  by_addr_.erase(it->second.addr.ip);
  nodes_.erase(it);
}

bool Network::attached(util::NodeId id) const {
  std::shared_lock<std::shared_mutex> lk(tables_mu_);
  return nodes_.contains(id);
}

void Network::set_link(util::NodeId id, LinkConfig link) {
  std::unique_lock<std::shared_mutex> lk(tables_mu_);
  const auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.link = link;
}

LinkConfig Network::link_of_locked(util::NodeId id) const {
  const auto it = nodes_.find(id);
  if (it != nodes_.end() && it->second.link) return *it->second.link;
  return default_link_;
}

std::shared_ptr<const Network::Chain> Network::chain_snapshot() const {
  std::lock_guard<std::mutex> lk(chain_mu_);
  return interceptors_;
}

void Network::add_interceptor(SendInterceptor* interceptor) {
  if (interceptor == nullptr) return;
  std::lock_guard<std::mutex> lk(chain_mu_);
  if (std::find(interceptors_->begin(), interceptors_->end(), interceptor) !=
      interceptors_->end()) {
    return;
  }
  auto next = std::make_shared<Chain>(*interceptors_);
  next->push_back(interceptor);
  interceptors_ = std::move(next);
}

void Network::remove_interceptor(SendInterceptor* interceptor) {
  std::lock_guard<std::mutex> lk(chain_mu_);
  if (std::find(interceptors_->begin(), interceptors_->end(), interceptor) ==
      interceptors_->end()) {
    return;
  }
  auto next = std::make_shared<Chain>(*interceptors_);
  next->erase(std::remove(next->begin(), next->end(), interceptor),
              next->end());
  interceptors_ = std::move(next);
}

std::vector<SendInterceptor*> Network::interceptors() const {
  return *chain_snapshot();
}

void Network::bind_registry(obs::Registry* registry) {
  if (registry == nullptr) {
    m_sent_ = m_dropped_injected_ = m_dropped_link_ = m_dropped_no_dest_ =
        m_delivered_ = m_mutated_ = nullptr;
    return;
  }
  m_sent_ = &registry->counter("net.packets.sent");
  m_dropped_injected_ = &registry->counter("net.packets.dropped.injected");
  m_dropped_link_ = &registry->counter("net.packets.dropped.link");
  m_dropped_no_dest_ =
      &registry->counter("net.packets.dropped.no_destination");
  m_delivered_ = &registry->counter("net.packets.delivered");
  m_mutated_ = &registry->counter("net.packets.mutated");
  // Catch the registry up with counts accumulated before binding.
  m_sent_->inc(packets_sent() - m_sent_->value());
  m_dropped_injected_->inc(packets_dropped_injected() -
                           m_dropped_injected_->value());
  m_dropped_link_->inc(packets_dropped_link() - m_dropped_link_->value());
  m_dropped_no_dest_->inc(packets_dropped_no_destination() -
                          m_dropped_no_dest_->value());
  m_delivered_->inc(packets_delivered() - m_delivered_->value());
  m_mutated_->inc(packets_mutated() - m_mutated_->value());
}

void Network::notify_fate(const std::shared_ptr<const Chain>& chain,
                          const SendContext& ctx, PacketFate fate,
                          util::SimTime delay) {
  for (SendInterceptor* interceptor : *chain) {
    interceptor->on_packet_fate(ctx, fate, delay);
  }
}

void Network::set_clock_skew(util::NodeId id, util::SimTime skew) {
  std::unique_lock<std::shared_mutex> lk(tables_mu_);
  if (skew == 0) {
    clock_skew_.erase(id);
  } else {
    clock_skew_[id] = skew;
  }
}

util::SimTime Network::local_time(util::NodeId id) const {
  std::shared_lock<std::shared_mutex> lk(tables_mu_);
  const auto it = clock_skew_.find(id);
  return transport_->now() + (it == clock_skew_.end() ? 0 : it->second);
}

void Network::send(util::NodeId from, util::NodeId to, util::Bytes data) {
  sent_.fetch_add(1, std::memory_order_relaxed);
  if (m_sent_ != nullptr) m_sent_->inc();
  // Post-mortem breadcrumb; a single relaxed load when the recorder is
  // disarmed (the default).
  obs::FlightRecorder::global().record("net.send", from, to);

  util::NetAddr from_addr;
  util::NetAddr to_addr;
  LinkConfig out_link;
  LinkConfig in_link;
  {
    std::shared_lock<std::shared_mutex> lk(tables_mu_);
    const auto sender = nodes_.find(from);
    if (sender != nodes_.end()) from_addr = sender->second.addr;
    const auto receiver = nodes_.find(to);
    if (receiver != nodes_.end()) to_addr = receiver->second.addr;
    out_link = link_of_locked(from);
    in_link = link_of_locked(to);
  }

  SendContext ctx{from, from_addr, to,          to_addr,
                  transport_->now(), &data,     data.size()};

  // The interceptor chain sees the packet before the link's own loss model,
  // so partition drops are counted separately from ambient loss. Every
  // interceptor is consulted even after one votes to drop — trace capture
  // must see the packet regardless of the fault engine's verdict. The chain
  // is a snapshot: concurrent add/remove swaps a new chain in, and this
  // send finishes on the one it started with.
  const std::shared_ptr<const Chain> chain = chain_snapshot();
  SendInterceptor::Verdict combined;
  for (SendInterceptor* interceptor : *chain) {
    SendInterceptor::Verdict v = interceptor->on_send(ctx);
    combined.drop = combined.drop || v.drop;
    combined.extra_delay += v.extra_delay;
    if (v.replace) {
      // In-flight payload rewrite (the adversary fuzzer's corruption seam):
      // interceptors later in the chain and the receiver see the mutated
      // bytes. The original payload is gone, as it would be on a real wire.
      data = std::move(*v.replace);
      ctx.data = &data;
      ctx.bytes = data.size();
      mutated_.fetch_add(1, std::memory_order_relaxed);
      if (m_mutated_ != nullptr) m_mutated_->inc();
      obs::FlightRecorder::global().record("net.mutate", from, to);
    }
  }
  if (combined.drop) {
    dropped_injected_.fetch_add(1, std::memory_order_relaxed);
    if (m_dropped_injected_ != nullptr) m_dropped_injected_->inc();
    obs::FlightRecorder::global().record("net.drop", from, to, "injected");
    notify_fate(chain, ctx, PacketFate::kInterceptorDropped,
                combined.extra_delay);
    return;
  }

  // Path properties combine both endpoints' access links. The rng draws —
  // loss first, then the two half-RTTs — happen in the historical order so
  // sim-backed runs stay byte-identical with the pre-seam engine.
  const double loss = 1.0 - (1.0 - out_link.loss) * (1.0 - in_link.loss);
  bool link_dropped = false;
  util::SimTime delay = 0;
  {
    std::lock_guard<std::mutex> lk(rng_mu_);
    if (loss > 0 && rng_.chance(loss)) {
      link_dropped = true;
    } else {
      delay = combined.extra_delay + out_link.latency.sample_rtt(rng_) / 2 +
              in_link.latency.sample_rtt(rng_) / 2;
    }
  }
  if (link_dropped) {
    dropped_link_.fetch_add(1, std::memory_order_relaxed);
    if (m_dropped_link_ != nullptr) m_dropped_link_->inc();
    obs::FlightRecorder::global().record("net.drop", from, to, "link");
    notify_fate(chain, ctx, PacketFate::kLinkDropped, combined.extra_delay);
    return;
  }
  notify_fate(chain, ctx, PacketFate::kInFlight, delay);

  // Delivery runs on the destination's group loop, serialized with every
  // other delivery and timer of that node.
  Packet packet{from, from_addr, to, std::move(data)};
  transport_->post(group_of(to), delay, [this, to_addr, delay,
                                         packet = std::move(packet)]() mutable {
    SendContext arrival{packet.from, packet.from_addr, packet.to,
                        to_addr,     transport_->now(), &packet.data,
                        packet.data.size()};
    const std::shared_ptr<const Chain> arrival_chain = chain_snapshot();
    Node* node = nullptr;
    {
      std::shared_lock<std::shared_mutex> lk(tables_mu_);
      const auto it = nodes_.find(packet.to);
      if (it != nodes_.end()) node = it->second.node;
    }
    if (node == nullptr) {
      dropped_no_dest_.fetch_add(1, std::memory_order_relaxed);
      if (m_dropped_no_dest_ != nullptr) m_dropped_no_dest_->inc();
      obs::FlightRecorder::global().record("net.drop", packet.from, packet.to,
                                           "no_destination");
      notify_fate(arrival_chain, arrival, PacketFate::kNoDestination, delay);
      return;
    }
    delivered_.fetch_add(1, std::memory_order_relaxed);
    if (m_delivered_ != nullptr) m_delivered_->inc();
    notify_fate(arrival_chain, arrival, PacketFate::kDelivered, delay);
    // Outside the table lock: on_packet may send(), attach(), detach().
    // Safe against detach-then-delete because a node is only detached from
    // its own group loop, which is where this delivery runs.
    node->on_packet(packet);
  });
}

std::optional<util::NetAddr> Network::addr_of(util::NodeId id) const {
  std::shared_lock<std::shared_mutex> lk(tables_mu_);
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) return std::nullopt;
  return it->second.addr;
}

std::optional<util::NodeId> Network::node_at(util::NetAddr addr) const {
  std::shared_lock<std::shared_mutex> lk(tables_mu_);
  const auto it = by_addr_.find(addr.ip);
  if (it == by_addr_.end()) return std::nullopt;
  return it->second;
}

}  // namespace p2pdrm::net
