#include "net/network.h"

namespace p2pdrm::net {

Network::Network(sim::Simulation& sim, LinkConfig default_link,
                 crypto::SecureRandom rng)
    : sim_(sim), default_link_(default_link), rng_(std::move(rng)) {}

void Network::attach(util::NodeId id, util::NetAddr addr, Node* node) {
  const auto old = nodes_.find(id);
  if (old != nodes_.end()) by_addr_.erase(old->second.addr.ip);
  nodes_[id] = Binding{addr, node, std::nullopt};
  by_addr_[addr.ip] = id;
}

void Network::detach(util::NodeId id) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  by_addr_.erase(it->second.addr.ip);
  nodes_.erase(it);
}

void Network::set_link(util::NodeId id, LinkConfig link) {
  const auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.link = link;
}

const LinkConfig& Network::link_of(util::NodeId id) const {
  const auto it = nodes_.find(id);
  if (it != nodes_.end() && it->second.link) return *it->second.link;
  return default_link_;
}

void Network::set_clock_skew(util::NodeId id, util::SimTime skew) {
  if (skew == 0) {
    clock_skew_.erase(id);
  } else {
    clock_skew_[id] = skew;
  }
}

util::SimTime Network::local_time(util::NodeId id) const {
  const auto it = clock_skew_.find(id);
  return sim_.now() + (it == clock_skew_.end() ? 0 : it->second);
}

void Network::send(util::NodeId from, util::NodeId to, util::Bytes data) {
  ++sent_;
  const auto sender = nodes_.find(from);
  const util::NetAddr from_addr =
      sender != nodes_.end() ? sender->second.addr : util::NetAddr{};

  // The fault overlay sees the packet before the link's own loss model, so
  // partition drops are counted like any other loss.
  FaultOverlay::Verdict fault;
  if (fault_overlay_ != nullptr) {
    const auto receiver = nodes_.find(to);
    const util::NetAddr to_addr =
        receiver != nodes_.end() ? receiver->second.addr : util::NetAddr{};
    fault = fault_overlay_->on_send(from, from_addr, to, to_addr, sim_.now());
    if (fault.drop) {
      ++dropped_;
      return;
    }
  }

  // Path properties combine both endpoints' access links.
  const LinkConfig& out_link = link_of(from);
  const LinkConfig& in_link = link_of(to);
  const double loss = 1.0 - (1.0 - out_link.loss) * (1.0 - in_link.loss);
  if (loss > 0 && rng_.chance(loss)) {
    ++dropped_;
    return;
  }
  const util::SimTime delay = fault.extra_delay +
      out_link.latency.sample_rtt(rng_) / 2 + in_link.latency.sample_rtt(rng_) / 2;

  Packet packet{from, from_addr, to, std::move(data)};
  sim_.schedule(delay, [this, packet = std::move(packet)]() mutable {
    const auto it = nodes_.find(packet.to);
    if (it == nodes_.end() || it->second.node == nullptr) {
      ++dropped_;  // destination gone by arrival time
      return;
    }
    ++delivered_;
    it->second.node->on_packet(packet);
  });
}

std::optional<util::NetAddr> Network::addr_of(util::NodeId id) const {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) return std::nullopt;
  return it->second.addr;
}

std::optional<util::NodeId> Network::node_at(util::NetAddr addr) const {
  const auto it = by_addr_.find(addr.ip);
  if (it == by_addr_.end()) return std::nullopt;
  return it->second;
}

}  // namespace p2pdrm::net
