#include "net/network.h"

#include <algorithm>

namespace p2pdrm::net {

Network::Network(sim::Simulation& sim, LinkConfig default_link,
                 crypto::SecureRandom rng)
    : sim_(sim), default_link_(default_link), rng_(std::move(rng)) {}

void Network::attach(util::NodeId id, util::NetAddr addr, Node* node) {
  const auto old = nodes_.find(id);
  if (old != nodes_.end()) by_addr_.erase(old->second.addr.ip);
  nodes_[id] = Binding{addr, node, std::nullopt};
  by_addr_[addr.ip] = id;
}

void Network::detach(util::NodeId id) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  by_addr_.erase(it->second.addr.ip);
  nodes_.erase(it);
}

void Network::set_link(util::NodeId id, LinkConfig link) {
  const auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.link = link;
}

const LinkConfig& Network::link_of(util::NodeId id) const {
  const auto it = nodes_.find(id);
  if (it != nodes_.end() && it->second.link) return *it->second.link;
  return default_link_;
}

void Network::add_interceptor(SendInterceptor* interceptor) {
  if (interceptor == nullptr) return;
  if (std::find(interceptors_.begin(), interceptors_.end(), interceptor) !=
      interceptors_.end()) {
    return;
  }
  interceptors_.push_back(interceptor);
}

void Network::remove_interceptor(SendInterceptor* interceptor) {
  interceptors_.erase(
      std::remove(interceptors_.begin(), interceptors_.end(), interceptor),
      interceptors_.end());
}

void Network::bind_registry(obs::Registry* registry) {
  if (registry == nullptr) {
    m_sent_ = m_dropped_injected_ = m_dropped_link_ = m_dropped_no_dest_ =
        m_delivered_ = nullptr;
    return;
  }
  m_sent_ = &registry->counter("net.packets.sent");
  m_dropped_injected_ = &registry->counter("net.packets.dropped.injected");
  m_dropped_link_ = &registry->counter("net.packets.dropped.link");
  m_dropped_no_dest_ =
      &registry->counter("net.packets.dropped.no_destination");
  m_delivered_ = &registry->counter("net.packets.delivered");
  // Catch the registry up with counts accumulated before binding.
  m_sent_->inc(sent_ - m_sent_->value());
  m_dropped_injected_->inc(dropped_injected_ - m_dropped_injected_->value());
  m_dropped_link_->inc(dropped_link_ - m_dropped_link_->value());
  m_dropped_no_dest_->inc(dropped_no_dest_ - m_dropped_no_dest_->value());
  m_delivered_->inc(delivered_ - m_delivered_->value());
}

void Network::notify_fate(const SendContext& ctx, PacketFate fate,
                          util::SimTime delay) {
  for (SendInterceptor* interceptor : interceptors_) {
    interceptor->on_packet_fate(ctx, fate, delay);
  }
}

void Network::set_clock_skew(util::NodeId id, util::SimTime skew) {
  if (skew == 0) {
    clock_skew_.erase(id);
  } else {
    clock_skew_[id] = skew;
  }
}

util::SimTime Network::local_time(util::NodeId id) const {
  const auto it = clock_skew_.find(id);
  return sim_.now() + (it == clock_skew_.end() ? 0 : it->second);
}

void Network::send(util::NodeId from, util::NodeId to, util::Bytes data) {
  ++sent_;
  if (m_sent_ != nullptr) m_sent_->inc();
  const auto sender = nodes_.find(from);
  const util::NetAddr from_addr =
      sender != nodes_.end() ? sender->second.addr : util::NetAddr{};
  const auto receiver = nodes_.find(to);
  const util::NetAddr to_addr =
      receiver != nodes_.end() ? receiver->second.addr : util::NetAddr{};

  SendContext ctx{from, from_addr, to,          to_addr,
                  sim_.now(),      &data,       data.size()};

  // The interceptor chain sees the packet before the link's own loss model,
  // so partition drops are counted separately from ambient loss. Every
  // interceptor is consulted even after one votes to drop — trace capture
  // must see the packet regardless of the fault engine's verdict.
  SendInterceptor::Verdict combined;
  for (SendInterceptor* interceptor : interceptors_) {
    const SendInterceptor::Verdict v = interceptor->on_send(ctx);
    combined.drop = combined.drop || v.drop;
    combined.extra_delay += v.extra_delay;
  }
  if (combined.drop) {
    ++dropped_injected_;
    if (m_dropped_injected_ != nullptr) m_dropped_injected_->inc();
    notify_fate(ctx, PacketFate::kInterceptorDropped, combined.extra_delay);
    return;
  }

  // Path properties combine both endpoints' access links.
  const LinkConfig& out_link = link_of(from);
  const LinkConfig& in_link = link_of(to);
  const double loss = 1.0 - (1.0 - out_link.loss) * (1.0 - in_link.loss);
  if (loss > 0 && rng_.chance(loss)) {
    ++dropped_link_;
    if (m_dropped_link_ != nullptr) m_dropped_link_->inc();
    notify_fate(ctx, PacketFate::kLinkDropped, combined.extra_delay);
    return;
  }
  const util::SimTime delay = combined.extra_delay +
      out_link.latency.sample_rtt(rng_) / 2 + in_link.latency.sample_rtt(rng_) / 2;
  notify_fate(ctx, PacketFate::kInFlight, delay);

  Packet packet{from, from_addr, to, std::move(data)};
  sim_.schedule(delay, [this, to_addr, delay,
                        packet = std::move(packet)]() mutable {
    SendContext arrival{packet.from, packet.from_addr, packet.to,
                        to_addr,     sim_.now(),       &packet.data,
                        packet.data.size()};
    const auto it = nodes_.find(packet.to);
    if (it == nodes_.end() || it->second.node == nullptr) {
      ++dropped_no_dest_;  // destination gone by arrival time
      if (m_dropped_no_dest_ != nullptr) m_dropped_no_dest_->inc();
      notify_fate(arrival, PacketFate::kNoDestination, delay);
      return;
    }
    ++delivered_;
    if (m_delivered_ != nullptr) m_delivered_->inc();
    notify_fate(arrival, PacketFate::kDelivered, delay);
    it->second.node->on_packet(packet);
  });
}

std::optional<util::NetAddr> Network::addr_of(util::NodeId id) const {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) return std::nullopt;
  return it->second.addr;
}

std::optional<util::NodeId> Network::node_at(util::NetAddr addr) const {
  const auto it = by_addr_.find(addr.ip);
  if (it == by_addr_.end()) return std::nullopt;
  return it->second;
}

}  // namespace p2pdrm::net
