// Datagram network: unreliable, latency-injected, transport-backed.
//
// Nodes attach with an id and an address; send() schedules delivery through
// a Transport backend with a sampled one-way delay, or drops the packet with
// the configured loss probability (independently per packet — the client's
// retry logic is what makes the protocols robust, exactly as over UDP).
// Per-node access links can override the default latency/loss.
//
// The backend is swappable (the Transport seam): SimTransport replays the
// historical discrete-event behaviour byte-for-byte — same rng call order,
// same schedule order — while ThreadTransport delivers over real event-loop
// threads with monotonic-clock timers. Protocol code above this class is
// identical on both.
//
// Thread safety (live backend): the attach/detach/link/skew tables sit
// behind a shared mutex, packet counters are atomics, the rng is mutexed
// (loss and latency sampling), and the interceptor chain is copy-on-write —
// add/remove swap a new snapshot in while in-flight send() calls keep
// iterating the old one (the historical add-vs-send race). Delivery for
// node X is posted to X's transport group, so a node's on_packet calls are
// serialized; detach/attach of X must likewise run on X's group loop when
// the transport is live.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "crypto/chacha20.h"
#include "obs/registry.h"
#include "sim/latency.h"
#include "sim/simulation.h"
#include "transport/transport.h"
#include "util/ids.h"

namespace p2pdrm::net {

struct Packet {
  util::NodeId from = util::kInvalidNode;
  util::NetAddr from_addr;
  util::NodeId to = util::kInvalidNode;
  util::Bytes data;
};

/// Something attached to the network.
class Node {
 public:
  virtual ~Node() = default;
  virtual void on_packet(const Packet& packet) = 0;
};

struct LinkConfig {
  sim::LatencyModel latency;  // RTT model; one-way = sample/2
  double loss = 0.0;          // per-packet drop probability
};

/// Everything an interceptor can know about a packet without owning it.
/// `data` stays valid only for the duration of the callback.
struct SendContext {
  util::NodeId from = util::kInvalidNode;
  util::NetAddr from_addr;
  util::NodeId to = util::kInvalidNode;
  util::NetAddr to_addr;
  util::SimTime now = 0;           // send time, or arrival time for the
                                   // kDelivered / kNoDestination callbacks
  const util::Bytes* data = nullptr;
  std::size_t bytes = 0;
};

/// How a send() resolved, reported to every interceptor via on_packet_fate.
enum class PacketFate {
  kInterceptorDropped,  // some interceptor in the chain dropped it
  kLinkDropped,         // the links' own loss model dropped it
  kInFlight,            // scheduled for delivery (delay = one-way latency)
  kDelivered,           // arrived; receiver's on_packet ran
  kNoDestination,       // arrived but the destination had detached
};

/// Injection seam consulted on every send(), in installation order, before
/// the link's own loss/latency model. The fault subsystem implements this to
/// model partitions, loss bursts, and latency spikes; the observability
/// subsystem implements it to trace packet hops. Every interceptor sees
/// every packet — verdicts combine across the chain (drop = any, delay =
/// sum) — and every interceptor hears the packet's final fate, including
/// drops decided by *other* interceptors. On a live transport, on_send and
/// on_packet_fate are called concurrently from many loops: implementations
/// must synchronize their own state.
class SendInterceptor {
 public:
  struct Verdict {
    bool drop = false;
    util::SimTime extra_delay = 0;  // added to the sampled one-way delay
    // When set, the packet's payload is replaced before it continues down
    // the chain and onto the wire — the corruption seam the adversary
    // fuzzer uses to truncate/bit-flip live traffic. Later interceptors
    // (and the receiver) see the mutated bytes; counted as
    // net.packets.mutated.
    std::optional<util::Bytes> replace;
  };

  virtual ~SendInterceptor() = default;
  virtual Verdict on_send(const SendContext& ctx) = 0;
  /// Called once when the send resolves (dropped or in flight; for in-flight
  /// packets `delay` is the total one-way delay), and again on arrival with
  /// kDelivered or kNoDestination. Default: ignore.
  virtual void on_packet_fate(const SendContext& ctx, PacketFate fate,
                              util::SimTime delay) {
    (void)ctx;
    (void)fate;
    (void)delay;
  }
};

class Network {
 public:
  /// Sim-backed: owns a SimTransport over `sim`; behaviour (event order,
  /// rng draws, traces) is byte-identical with the pre-seam engine.
  Network(sim::Simulation& sim, LinkConfig default_link, crypto::SecureRandom rng);
  /// Explicit backend (not owned; must outlive the network).
  Network(transport::Transport& transport, LinkConfig default_link,
          crypto::SecureRandom rng);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Attach a node (replaces any previous binding of the id).
  void attach(util::NodeId id, util::NetAddr addr, Node* node);
  /// Detach: in-flight packets to this node are dropped on arrival.
  void detach(util::NodeId id);
  bool attached(util::NodeId id) const;

  /// Override the access link of one node (both directions use the worse
  /// half of each endpoint's link: delay adds, loss combines).
  void set_link(util::NodeId id, LinkConfig link);

  /// Fire-and-forget datagram. Packets to unknown destinations vanish
  /// (like the real Internet).
  void send(util::NodeId from, util::NodeId to, util::Bytes data);

  std::optional<util::NetAddr> addr_of(util::NodeId id) const;
  /// Reverse lookup (exact address match).
  std::optional<util::NodeId> node_at(util::NetAddr addr) const;

  /// Append an interceptor to the chain (not owned). Consulted in
  /// installation order on every send. No-op if already installed.
  /// Safe against concurrent send() calls: in-flight sends finish on the
  /// chain they snapshotted.
  void add_interceptor(SendInterceptor* interceptor);
  /// Remove from the chain; safe to call for an absent interceptor. The
  /// interceptor may still hear callbacks from sends already in flight —
  /// keep it alive until the transport quiesces.
  void remove_interceptor(SendInterceptor* interceptor);
  /// Snapshot of the current chain, in installation order.
  std::vector<SendInterceptor*> interceptors() const;

  /// Mirror packet counters into `registry` (net.packets.*). Pass nullptr
  /// to stop mirroring. Counts accumulated before binding are copied in.
  void bind_registry(obs::Registry* registry);

  /// Clock skew: a node's local clock reads now() + skew. Servers stamp
  /// and validate tickets against their *local* clock, so a skewed manager
  /// misjudges expiry times — a classic production fault.
  void set_clock_skew(util::NodeId id, util::SimTime skew);
  /// The node's local wall clock (transport time for nodes without skew).
  util::SimTime local_time(util::NodeId id) const;

  // --- transport surface -------------------------------------------------

  transport::Transport& transport() { return *transport_; }
  const transport::Transport& transport() const { return *transport_; }
  /// Current transport time (virtual µs on sim, monotonic µs live).
  util::SimTime now() const { return transport_->now(); }
  /// True on a real-threaded backend (timing is wall-clock, not virtual).
  bool live() const { return transport_->live(); }
  /// The transport group (event loop) that owns a node's deliveries and
  /// timers. All state of node `id` is confined to this group.
  std::size_t group_of(util::NodeId id) const {
    return static_cast<std::size_t>(id) % transport_->groups();
  }
  /// Run `fn` on `owner`'s group loop after `delay` — the one scheduling
  /// primitive protocol code should use for timers, so the callback is
  /// serialized with the node's packet deliveries on both backends.
  void post(util::NodeId owner, util::SimTime delay, transport::Task fn) {
    transport_->post(group_of(owner), delay, std::move(fn));
  }

  /// The simulation under a sim-backed network. Aborts on a live backend —
  /// callers that can run on either must use now()/post() instead.
  sim::Simulation& sim() const;

  std::uint64_t packets_sent() const {
    return sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t packets_dropped() const {
    return packets_dropped_injected() + packets_dropped_link() +
           packets_dropped_no_destination();
  }
  std::uint64_t packets_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

  // Drop-cause split: interceptor-injected vs the links' own loss model vs
  // destination gone by arrival time.
  std::uint64_t packets_dropped_injected() const {
    return dropped_injected_.load(std::memory_order_relaxed);
  }
  std::uint64_t packets_dropped_link() const {
    return dropped_link_.load(std::memory_order_relaxed);
  }
  std::uint64_t packets_dropped_no_destination() const {
    return dropped_no_dest_.load(std::memory_order_relaxed);
  }
  /// Packets whose payload an interceptor rewrote in flight (Verdict::replace).
  std::uint64_t packets_mutated() const {
    return mutated_.load(std::memory_order_relaxed);
  }

 private:
  struct Binding {
    util::NetAddr addr;
    Node* node = nullptr;
    std::optional<LinkConfig> link;
  };

  using Chain = std::vector<SendInterceptor*>;

  std::shared_ptr<const Chain> chain_snapshot() const;
  void notify_fate(const std::shared_ptr<const Chain>& chain,
                   const SendContext& ctx, PacketFate fate,
                   util::SimTime delay);
  LinkConfig link_of_locked(util::NodeId id) const;

  // Backend: either owned (sim ctor) or borrowed (transport ctor). sim_ is
  // null on a live backend.
  std::unique_ptr<transport::Transport> owned_transport_;
  transport::Transport* transport_ = nullptr;
  sim::Simulation* sim_ = nullptr;

  LinkConfig default_link_;

  mutable std::mutex rng_mu_;
  crypto::SecureRandom rng_;

  /// Guards nodes_, by_addr_, clock_skew_. Skews live outside the bindings:
  /// a crashed (detached) node keeps its wrong clock across a restart,
  /// exactly like real broken hardware.
  mutable std::shared_mutex tables_mu_;
  std::map<util::NodeId, Binding> nodes_;
  std::map<std::uint32_t, util::NodeId> by_addr_;
  std::map<util::NodeId, util::SimTime> clock_skew_;

  /// Copy-on-write interceptor chain: mutators build a new vector and swap
  /// the pointer under chain_mu_; readers take a shared_ptr snapshot.
  mutable std::mutex chain_mu_;
  std::shared_ptr<const Chain> interceptors_ = std::make_shared<Chain>();

  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> dropped_injected_{0};
  std::atomic<std::uint64_t> dropped_link_{0};
  std::atomic<std::uint64_t> dropped_no_dest_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> mutated_{0};

  // Registry mirrors (null until bind_registry). Counters are atomic, so
  // bumping through these pointers is thread-safe; the pointers themselves
  // are set during single-threaded wiring.
  obs::Counter* m_sent_ = nullptr;
  obs::Counter* m_dropped_injected_ = nullptr;
  obs::Counter* m_dropped_link_ = nullptr;
  obs::Counter* m_dropped_no_dest_ = nullptr;
  obs::Counter* m_delivered_ = nullptr;
  obs::Counter* m_mutated_ = nullptr;
};

}  // namespace p2pdrm::net
