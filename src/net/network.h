// Simulated datagram network: unreliable, latency-injected, deterministic.
//
// Nodes attach with an id and an address; send() schedules delivery through
// the discrete-event simulation with a sampled one-way delay, or drops the
// packet with the configured loss probability (independently per packet —
// the client's retry logic is what makes the protocols robust, exactly as
// over UDP). Per-node access links can override the default latency/loss.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "crypto/chacha20.h"
#include "obs/registry.h"
#include "sim/latency.h"
#include "sim/simulation.h"
#include "util/ids.h"

namespace p2pdrm::net {

struct Packet {
  util::NodeId from = util::kInvalidNode;
  util::NetAddr from_addr;
  util::NodeId to = util::kInvalidNode;
  util::Bytes data;
};

/// Something attached to the network.
class Node {
 public:
  virtual ~Node() = default;
  virtual void on_packet(const Packet& packet) = 0;
};

struct LinkConfig {
  sim::LatencyModel latency;  // RTT model; one-way = sample/2
  double loss = 0.0;          // per-packet drop probability
};

/// Everything an interceptor can know about a packet without owning it.
/// `data` stays valid only for the duration of the callback.
struct SendContext {
  util::NodeId from = util::kInvalidNode;
  util::NetAddr from_addr;
  util::NodeId to = util::kInvalidNode;
  util::NetAddr to_addr;
  util::SimTime now = 0;           // send time, or arrival time for the
                                   // kDelivered / kNoDestination callbacks
  const util::Bytes* data = nullptr;
  std::size_t bytes = 0;
};

/// How a send() resolved, reported to every interceptor via on_packet_fate.
enum class PacketFate {
  kInterceptorDropped,  // some interceptor in the chain dropped it
  kLinkDropped,         // the links' own loss model dropped it
  kInFlight,            // scheduled for delivery (delay = one-way latency)
  kDelivered,           // arrived; receiver's on_packet ran
  kNoDestination,       // arrived but the destination had detached
};

/// Injection seam consulted on every send(), in installation order, before
/// the link's own loss/latency model. The fault subsystem implements this to
/// model partitions, loss bursts, and latency spikes; the observability
/// subsystem implements it to trace packet hops. Every interceptor sees
/// every packet — verdicts combine across the chain (drop = any, delay =
/// sum) — and every interceptor hears the packet's final fate, including
/// drops decided by *other* interceptors.
class SendInterceptor {
 public:
  struct Verdict {
    bool drop = false;
    util::SimTime extra_delay = 0;  // added to the sampled one-way delay
  };

  virtual ~SendInterceptor() = default;
  virtual Verdict on_send(const SendContext& ctx) = 0;
  /// Called once when the send resolves (dropped or in flight; for in-flight
  /// packets `delay` is the total one-way delay), and again on arrival with
  /// kDelivered or kNoDestination. Default: ignore.
  virtual void on_packet_fate(const SendContext& ctx, PacketFate fate,
                              util::SimTime delay) {
    (void)ctx;
    (void)fate;
    (void)delay;
  }
};

class Network {
 public:
  Network(sim::Simulation& sim, LinkConfig default_link, crypto::SecureRandom rng);

  /// Attach a node (replaces any previous binding of the id).
  void attach(util::NodeId id, util::NetAddr addr, Node* node);
  /// Detach: in-flight packets to this node are dropped on arrival.
  void detach(util::NodeId id);
  bool attached(util::NodeId id) const { return nodes_.contains(id); }

  /// Override the access link of one node (both directions use the worse
  /// half of each endpoint's link: delay adds, loss combines).
  void set_link(util::NodeId id, LinkConfig link);

  /// Fire-and-forget datagram. Packets to unknown destinations vanish
  /// (like the real Internet).
  void send(util::NodeId from, util::NodeId to, util::Bytes data);

  std::optional<util::NetAddr> addr_of(util::NodeId id) const;
  /// Reverse lookup (exact address match).
  std::optional<util::NodeId> node_at(util::NetAddr addr) const;

  /// Append an interceptor to the chain (not owned). Consulted in
  /// installation order on every send. No-op if already installed.
  void add_interceptor(SendInterceptor* interceptor);
  /// Remove from the chain; safe to call for an absent interceptor.
  void remove_interceptor(SendInterceptor* interceptor);
  const std::vector<SendInterceptor*>& interceptors() const {
    return interceptors_;
  }

  /// Mirror packet counters into `registry` (net.packets.*). Pass nullptr
  /// to stop mirroring. Counts accumulated before binding are copied in.
  void bind_registry(obs::Registry* registry);

  /// Clock skew: a node's local clock reads sim.now() + skew. Servers stamp
  /// and validate tickets against their *local* clock, so a skewed manager
  /// misjudges expiry times — a classic production fault.
  void set_clock_skew(util::NodeId id, util::SimTime skew);
  /// The node's local wall clock (sim time for nodes without skew).
  util::SimTime local_time(util::NodeId id) const;

  sim::Simulation& sim() { return sim_; }

  std::uint64_t packets_sent() const { return sent_; }
  std::uint64_t packets_dropped() const {
    return dropped_injected_ + dropped_link_ + dropped_no_dest_;
  }
  std::uint64_t packets_delivered() const { return delivered_; }

  // Drop-cause split: interceptor-injected vs the links' own loss model vs
  // destination gone by arrival time.
  std::uint64_t packets_dropped_injected() const { return dropped_injected_; }
  std::uint64_t packets_dropped_link() const { return dropped_link_; }
  std::uint64_t packets_dropped_no_destination() const {
    return dropped_no_dest_;
  }

 private:
  struct Binding {
    util::NetAddr addr;
    Node* node = nullptr;
    std::optional<LinkConfig> link;
  };

  void notify_fate(const SendContext& ctx, PacketFate fate,
                   util::SimTime delay);

  /// Skews live outside the bindings: a crashed (detached) node keeps its
  /// wrong clock across a restart, exactly like real broken hardware.
  std::map<util::NodeId, util::SimTime> clock_skew_;
  std::vector<SendInterceptor*> interceptors_;

  const LinkConfig& link_of(util::NodeId id) const;

  sim::Simulation& sim_;
  LinkConfig default_link_;
  crypto::SecureRandom rng_;
  std::map<util::NodeId, Binding> nodes_;
  std::map<std::uint32_t, util::NodeId> by_addr_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_injected_ = 0;
  std::uint64_t dropped_link_ = 0;
  std::uint64_t dropped_no_dest_ = 0;
  std::uint64_t delivered_ = 0;

  // Registry mirrors (null until bind_registry).
  obs::Counter* m_sent_ = nullptr;
  obs::Counter* m_dropped_injected_ = nullptr;
  obs::Counter* m_dropped_link_ = nullptr;
  obs::Counter* m_dropped_no_dest_ = nullptr;
  obs::Counter* m_delivered_ = nullptr;
};

}  // namespace p2pdrm::net
