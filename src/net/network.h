// Simulated datagram network: unreliable, latency-injected, deterministic.
//
// Nodes attach with an id and an address; send() schedules delivery through
// the discrete-event simulation with a sampled one-way delay, or drops the
// packet with the configured loss probability (independently per packet —
// the client's retry logic is what makes the protocols robust, exactly as
// over UDP). Per-node access links can override the default latency/loss.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "crypto/chacha20.h"
#include "sim/latency.h"
#include "sim/simulation.h"
#include "util/ids.h"

namespace p2pdrm::net {

struct Packet {
  util::NodeId from = util::kInvalidNode;
  util::NetAddr from_addr;
  util::NodeId to = util::kInvalidNode;
  util::Bytes data;
};

/// Something attached to the network.
class Node {
 public:
  virtual ~Node() = default;
  virtual void on_packet(const Packet& packet) = 0;
};

struct LinkConfig {
  sim::LatencyModel latency;  // RTT model; one-way = sample/2
  double loss = 0.0;          // per-packet drop probability
};

/// Injection seam for the fault subsystem: consulted on every send() before
/// the link's own loss/latency model. A fault engine implements this to
/// model partitions (unconditional drops between address groups), loss
/// bursts, and latency spikes layered on top of the configured links.
class FaultOverlay {
 public:
  struct Verdict {
    bool drop = false;
    util::SimTime extra_delay = 0;  // added to the sampled one-way delay
  };

  virtual ~FaultOverlay() = default;
  virtual Verdict on_send(util::NodeId from, util::NetAddr from_addr,
                          util::NodeId to, util::NetAddr to_addr,
                          util::SimTime now) = 0;
};

class Network {
 public:
  Network(sim::Simulation& sim, LinkConfig default_link, crypto::SecureRandom rng);

  /// Attach a node (replaces any previous binding of the id).
  void attach(util::NodeId id, util::NetAddr addr, Node* node);
  /// Detach: in-flight packets to this node are dropped on arrival.
  void detach(util::NodeId id);
  bool attached(util::NodeId id) const { return nodes_.contains(id); }

  /// Override the access link of one node (both directions use the worse
  /// half of each endpoint's link: delay adds, loss combines).
  void set_link(util::NodeId id, LinkConfig link);

  /// Fire-and-forget datagram. Packets to unknown destinations vanish
  /// (like the real Internet).
  void send(util::NodeId from, util::NodeId to, util::Bytes data);

  std::optional<util::NetAddr> addr_of(util::NodeId id) const;
  /// Reverse lookup (exact address match).
  std::optional<util::NodeId> node_at(util::NetAddr addr) const;

  /// Install (or clear, with nullptr) the fault overlay. Not owned.
  void set_fault_overlay(FaultOverlay* overlay) { fault_overlay_ = overlay; }
  FaultOverlay* fault_overlay() const { return fault_overlay_; }

  /// Clock skew: a node's local clock reads sim.now() + skew. Servers stamp
  /// and validate tickets against their *local* clock, so a skewed manager
  /// misjudges expiry times — a classic production fault.
  void set_clock_skew(util::NodeId id, util::SimTime skew);
  /// The node's local wall clock (sim time for nodes without skew).
  util::SimTime local_time(util::NodeId id) const;

  sim::Simulation& sim() { return sim_; }

  std::uint64_t packets_sent() const { return sent_; }
  std::uint64_t packets_dropped() const { return dropped_; }
  std::uint64_t packets_delivered() const { return delivered_; }

 private:
  struct Binding {
    util::NetAddr addr;
    Node* node = nullptr;
    std::optional<LinkConfig> link;
  };

  /// Skews live outside the bindings: a crashed (detached) node keeps its
  /// wrong clock across a restart, exactly like real broken hardware.
  std::map<util::NodeId, util::SimTime> clock_skew_;
  FaultOverlay* fault_overlay_ = nullptr;

  const LinkConfig& link_of(util::NodeId id) const;

  sim::Simulation& sim_;
  LinkConfig default_link_;
  crypto::SecureRandom rng_;
  std::map<util::NodeId, Binding> nodes_;
  std::map<std::uint32_t, util::NodeId> by_addr_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace p2pdrm::net
