#include "net/service_nodes.h"

#include "obs/flight_recorder.h"

namespace p2pdrm::net {

namespace {

/// Send `payload` as a response envelope after the node's processing delay.
void respond_after(Network& network, util::NodeId self, util::NodeId to,
                   MsgKind kind, std::uint64_t request_id, util::Bytes payload,
                   util::SimTime processing) {
  Envelope reply;
  reply.kind = kind;
  reply.request_id = request_id;
  reply.payload = std::move(payload);
  util::Bytes wire = reply.encode();
  if (processing <= 0) {
    network.send(self, to, std::move(wire));
    return;
  }
  network.post(self, processing, [&network, self, to, wire = std::move(wire)]() mutable {
    // An instance that crashed while the request was in service loses its
    // in-flight state: the half-finished response never leaves the box.
    if (!network.attached(self)) return;
    network.send(self, to, std::move(wire));
  });
}

/// Record the span of one served request: parented to the client attempt
/// that sent it (via the tracer's request-binding table), covering
/// [arrival, arrival + processing]. `outcome` tags the handler's verdict.
void trace_serve(obs::Tracer* tracer, Network& network, util::NodeId self,
                 const Packet& packet, const Envelope& env,
                 util::SimTime processing, std::string_view outcome) {
  if (tracer == nullptr) return;
  const util::SimTime now = network.now();
  const obs::SpanId parent = tracer->bound_request(packet.from, env.request_id);
  const obs::SpanId span =
      tracer->begin_span("server", "serve " + std::string(to_string(env.kind)),
                         self, now, parent);
  tracer->tag(span, "from", std::to_string(packet.from));
  const bool ok = outcome == "ok";
  if (!outcome.empty()) tracer->tag(span, "outcome", std::string(outcome));
  tracer->end_span(span, now + processing, ok || outcome.empty());
}

/// One packet the node could not parse. These used to vanish without a
/// trace; now every service node counts them under a cause label.
void count_malformed(obs::Registry* registry) {
  if (registry != nullptr) registry->counter("server.drops", "malformed").inc();
}

/// Fresh admissions are the sheddable tier: a shed LOGIN costs one viewer a
/// delayed start, a shed renewal/SWITCH costs an existing viewer their
/// session (§II — session continuity beats new admissions).
bool sheddable_kind(MsgKind kind) {
  return kind == MsgKind::kLogin1Request || kind == MsgKind::kLogin2Request;
}

/// Route one decoded request through the node's admission queue. Without a
/// queue this is a plain call to `serve` (the legacy instantaneous model).
/// With one, the request either waits for a worker — `serve` runs at
/// service start, after an observable "queue" span — or is shed with a
/// kBusy response carrying a retry-after hint. Shedding is never silent.
void admit_or_shed(ServiceQueue* queue, obs::Registry* registry,
                   obs::Tracer* tracer, Network& network, util::NodeId self,
                   const Packet& packet, const Envelope& env,
                   util::SimTime service, std::function<void()> serve) {
  if (queue == nullptr) {
    serve();
    return;
  }
  const util::SimTime now = network.now();
  const ServiceQueue::Decision d =
      queue->admit(now, service, sheddable_kind(env.kind));
  if (registry != nullptr) {
    registry->gauge("server.queue.depth", std::to_string(self))
        .set(static_cast<std::int64_t>(queue->depth(now)));
  }
  if (!d.accepted) {
    if (registry != nullptr) {
      registry->counter("server.shed", std::string(to_string(env.kind))).inc();
      registry->counter("server.busy_sent").inc();
    }
    obs::FlightRecorder::global().record("server.shed", self,
                                         static_cast<std::uint64_t>(d.depth),
                                         std::string(to_string(env.kind)).c_str());
    if (tracer != nullptr) {
      const obs::SpanId parent = tracer->bound_request(packet.from, env.request_id);
      const obs::SpanId span = tracer->begin_span(
          "server", "shed " + std::string(to_string(env.kind)), self, now, parent);
      tracer->tag(span, "retry_after", std::to_string(d.retry_after));
      tracer->tag(span, "depth", std::to_string(d.depth));
      tracer->end_span(span, now, false);
    }
    BusyPayload busy;
    busy.retry_after = std::min(d.retry_after, BusyPayload::kMaxRetryAfter);
    busy.queue_depth = static_cast<std::uint32_t>(d.depth);
    Envelope reply;
    reply.kind = MsgKind::kBusy;
    reply.request_id = env.request_id;
    reply.payload = busy.encode();
    // Rejection is cheap (no worker consumed): the BUSY leaves immediately.
    network.send(self, packet.from, reply.encode());
    return;
  }
  if (d.wait <= 0) {
    serve();
    return;
  }
  if (tracer != nullptr) {
    const obs::SpanId parent = tracer->bound_request(packet.from, env.request_id);
    const obs::SpanId span =
        tracer->begin_span("server", "queue", self, now, parent);
    tracer->tag(span, "depth", std::to_string(d.depth));
    tracer->end_span(span, now + d.wait, true);
  }
  network.post(self, d.wait, [&network, self, serve = std::move(serve)] {
    // An instance that crashed while the request was queued loses it; the
    // client's retransmission machinery takes over.
    if (!network.attached(self)) return;
    serve();
  });
}

}  // namespace

RedirectionNode::RedirectionNode(services::RedirectionManager& rm, Network& network,
                                 util::NodeId self, ProcessingModel processing)
    : rm_(rm), network_(network), self_(self), processing_(processing) {}

void RedirectionNode::set_overload_policy(const OverloadPolicy& policy) {
  queue_ = policy.enabled() ? std::make_unique<ServiceQueue>(policy) : nullptr;
}

void RedirectionNode::on_packet(const Packet& packet) {
  const auto env = Envelope::decode(packet.data);
  if (!env) {
    count_malformed(registry_);
    return;
  }
  if (env->kind != MsgKind::kRedirectRequest) return;
  admit_or_shed(queue_.get(), registry_, tracer_, network_, self_, packet, *env,
                processing_.light, [this, packet, env = *env] {
    try {
      const auto req = services::RedirectRequest::decode(env.payload);
      const auto resp = rm_.handle_lookup(req);
      trace_serve(tracer_, network_, self_, packet, env, processing_.light,
                  resp.found ? "ok" : "unknown-user");
      respond_after(network_, self_, packet.from, MsgKind::kRedirectResponse,
                    env.request_id, resp.encode(), processing_.light);
    } catch (const util::WireError&) {
      count_malformed(registry_);
    }
  });
}

UserManagerNode::UserManagerNode(services::UserManager& um, Network& network,
                                 util::NodeId self, ProcessingModel processing)
    : um_(um), network_(network), self_(self), processing_(processing) {}

void UserManagerNode::set_overload_policy(const OverloadPolicy& policy) {
  queue_ = policy.enabled() ? std::make_unique<ServiceQueue>(policy) : nullptr;
}

void UserManagerNode::on_packet(const Packet& packet) {
  const auto env = Envelope::decode(packet.data);
  if (!env) {
    count_malformed(registry_);
    return;
  }
  switch (env->kind) {
    case MsgKind::kLogin1Request:
      admit_or_shed(queue_.get(), registry_, tracer_, network_, self_, packet,
                    *env, processing_.light, [this, packet, env = *env] {
        try {
          const auto req = core::Login1Request::decode(env.payload);
          const auto resp =
              um_.handle_login1(req, packet.from_addr, network_.local_time(self_));
          trace_serve(tracer_, network_, self_, packet, env, processing_.light,
                      core::to_string(resp.error));
          respond_after(network_, self_, packet.from, MsgKind::kLogin1Response,
                        env.request_id, resp.encode(), processing_.light);
        } catch (const util::WireError&) {
          count_malformed(registry_);
        }
      });
      return;
    case MsgKind::kLogin2Request:
      admit_or_shed(queue_.get(), registry_, tracer_, network_, self_, packet,
                    *env, processing_.heavy, [this, packet, env = *env] {
        try {
          const auto req = core::Login2Request::decode(env.payload);
          const auto resp =
              um_.handle_login2(req, packet.from_addr, network_.local_time(self_));
          trace_serve(tracer_, network_, self_, packet, env, processing_.heavy,
                      core::to_string(resp.error));
          respond_after(network_, self_, packet.from, MsgKind::kLogin2Response,
                        env.request_id, resp.encode(), processing_.heavy);
        } catch (const util::WireError&) {
          count_malformed(registry_);
        }
      });
      return;
    default:
      return;  // not for this node
  }
}

ChannelPolicyNode::ChannelPolicyNode(services::ChannelPolicyManager& cpm,
                                     Network& network, util::NodeId self,
                                     ProcessingModel processing)
    : cpm_(cpm), network_(network), self_(self), processing_(processing) {}

void ChannelPolicyNode::set_overload_policy(const OverloadPolicy& policy) {
  queue_ = policy.enabled() ? std::make_unique<ServiceQueue>(policy) : nullptr;
}

void ChannelPolicyNode::on_packet(const Packet& packet) {
  const auto env = Envelope::decode(packet.data);
  if (!env) {
    count_malformed(registry_);
    return;
  }
  if (env->kind != MsgKind::kChannelListRequest) return;
  admit_or_shed(queue_.get(), registry_, tracer_, network_, self_, packet, *env,
                processing_.light, [this, packet, env = *env] {
    try {
      const auto req = core::ChannelListRequest::decode(env.payload);
      const auto resp = cpm_.handle_channel_list(req, network_.local_time(self_));
      trace_serve(tracer_, network_, self_, packet, env, processing_.light,
                  core::to_string(resp.error));
      respond_after(network_, self_, packet.from, MsgKind::kChannelListResponse,
                    env.request_id, resp.encode(), processing_.light);
    } catch (const util::WireError&) {
      count_malformed(registry_);
    }
  });
}

ChannelManagerNode::ChannelManagerNode(services::ChannelManager& cm, Network& network,
                                       util::NodeId self, ProcessingModel processing)
    : cm_(cm), network_(network), self_(self), processing_(processing) {}

void ChannelManagerNode::set_overload_policy(const OverloadPolicy& policy) {
  queue_ = policy.enabled() ? std::make_unique<ServiceQueue>(policy) : nullptr;
}

void ChannelManagerNode::on_packet(const Packet& packet) {
  const auto env = Envelope::decode(packet.data);
  if (!env) {
    count_malformed(registry_);
    return;
  }
  switch (env->kind) {
    case MsgKind::kSwitch1Request:
      admit_or_shed(queue_.get(), registry_, tracer_, network_, self_, packet,
                    *env, processing_.light, [this, packet, env = *env] {
        try {
          const auto req = core::Switch1Request::decode(env.payload);
          const auto resp =
              cm_.handle_switch1(req, packet.from_addr, network_.local_time(self_));
          trace_serve(tracer_, network_, self_, packet, env, processing_.light,
                      core::to_string(resp.error));
          respond_after(network_, self_, packet.from, MsgKind::kSwitch1Response,
                        env.request_id, resp.encode(), processing_.light);
        } catch (const util::WireError&) {
          count_malformed(registry_);
        }
      });
      return;
    case MsgKind::kSwitch2Request:
      admit_or_shed(queue_.get(), registry_, tracer_, network_, self_, packet,
                    *env, processing_.heavy, [this, packet, env = *env] {
        try {
          const auto req = core::Switch2Request::decode(env.payload);
          const auto resp =
              cm_.handle_switch2(req, packet.from_addr, network_.local_time(self_));
          trace_serve(tracer_, network_, self_, packet, env, processing_.heavy,
                      core::to_string(resp.error));
          respond_after(network_, self_, packet.from, MsgKind::kSwitch2Response,
                        env.request_id, resp.encode(), processing_.heavy);
        } catch (const util::WireError&) {
          count_malformed(registry_);
        }
      });
      return;
    default:
      return;
  }
}

PeerNode::PeerNode(std::unique_ptr<p2p::Peer> peer, Network& network,
                   ProcessingModel processing)
    : peer_(std::move(peer)), network_(network), processing_(processing) {}

void PeerNode::on_packet(const Packet& packet) {
  const auto env = Envelope::decode(packet.data);
  if (!env) {
    count_malformed(registry_);
    return;
  }
  const util::SimTime now = network_.local_time(id());
  switch (env->kind) {
    case MsgKind::kJoinRequest: {
      try {
        const auto req = core::JoinRequest::decode(env->payload);
        const core::JoinResponse resp =
            peer_->handle_join(req, packet.from_addr, packet.from, now);
        trace_serve(tracer_, network_, id(), packet, *env, processing_.heavy,
                    core::to_string(resp.error));
        respond_after(network_, id(), packet.from, MsgKind::kJoinResponse,
                      env->request_id, resp.encode(), processing_.heavy);
        if (resp.error == core::DrmError::kOk && join_observer_) {
          join_observer_(packet.from, peer_->child_count());
        }
      } catch (const util::WireError&) {
        count_malformed(registry_);
      }
      return;
    }
    case MsgKind::kRenewalPresent: {
      const bool ok = peer_->present_renewal(packet.from, env->payload, now);
      util::WireWriter w;
      w.u8(ok ? 1 : 0);
      respond_after(network_, id(), packet.from, MsgKind::kRenewalAck,
                    env->request_id, w.take(), processing_.light);
      return;
    }
    case MsgKind::kKeyBlob: {
      std::vector<p2p::Outgoing> forwards =
          peer_->handle_key_blob(packet.from, env->payload);
      if (forwards.empty()) return;  // leaf install or duplicate epoch
      if (tracer_ != nullptr && env->request_id != 0) {
        // Parent this relay under the incoming blob's binding (the sender's
        // relay span, or the rotation root span) and bind our own epoch so
        // the outgoing hops attach here.
        const obs::SpanId parent =
            tracer_->bound_request(packet.from, env->request_id);
        const obs::SpanId relay =
            tracer_->begin_span("p2p", "relay key", id(), now, parent);
        tracer_->tag(relay, "children", std::to_string(forwards.size()));
        if (bound_epoch_ != 0) tracer_->unbind_request(id(), bound_epoch_);
        tracer_->bind_request(id(), env->request_id, relay);
        bound_epoch_ = env->request_id;
        tracer_->end_span(relay, now);
      }
      for (p2p::Outgoing& out : forwards) {
        Envelope fwd;
        fwd.kind = MsgKind::kKeyBlob;
        fwd.request_id = env->request_id;
        fwd.payload = std::move(out.payload);
        network_.send(id(), out.to, fwd.encode());
        ++keys_relayed_;
      }
      return;
    }
    case MsgKind::kContent: {
      core::ContentPacket content;
      try {
        content = core::ContentPacket::decode(env->payload);
      } catch (const util::WireError&) {
        count_malformed(registry_);
        return;
      }
      ++content_received_;
      if (content_sink_) content_sink_(content, peer_->decrypt(content));
      forward_content(content);
      return;
    }
    default:
      return;
  }
}

void PeerNode::announce_key(const core::ContentKey& key,
                            std::uint64_t request_id) {
  for (p2p::Outgoing& out : peer_->announce_key(key)) {
    Envelope env;
    env.kind = MsgKind::kKeyBlob;
    env.request_id = request_id;
    env.payload = std::move(out.payload);
    network_.send(id(), out.to, env.encode());
    ++keys_relayed_;
  }
}

void PeerNode::forward_content(const core::ContentPacket& packet) {
  Envelope env;
  env.kind = MsgKind::kContent;
  env.payload = packet.encode();
  const util::Bytes wire = env.encode();
  // Sub-stream aware: each child only receives the sub-streams it asked
  // this parent for (peer-division multiplexing).
  for (util::NodeId child : peer_->forward_targets_for(packet.seq)) {
    network_.send(id(), child, wire);
  }
}

}  // namespace p2pdrm::net
