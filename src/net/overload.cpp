#include "net/overload.h"

#include <algorithm>
#include <stdexcept>

namespace p2pdrm::net {

ServiceQueue::ServiceQueue(OverloadPolicy policy) : policy_(policy) {
  if (policy_.workers == 0) {
    throw std::invalid_argument("ServiceQueue: zero workers");
  }
  for (std::size_t i = 0; i < policy_.workers; ++i) free_at_.push(0);
}

void ServiceQueue::prune(util::SimTime now) const {
  while (!starts_.empty() && starts_.front() <= now) starts_.pop_front();
}

std::size_t ServiceQueue::depth(util::SimTime now) const {
  prune(now);
  return starts_.size();
}

ServiceQueue::Decision ServiceQueue::admit(util::SimTime now,
                                           util::SimTime service,
                                           bool sheddable) {
  prune(now);
  Decision d;
  d.depth = starts_.size();

  const bool over_capacity =
      policy_.queue_capacity > 0 && d.depth >= policy_.queue_capacity;
  const bool over_high_water =
      sheddable && policy_.high_water > 0 && d.depth >= policy_.high_water;
  if (over_capacity || over_high_water) {
    d.accepted = false;
    ++shed_;
    // Hint scales with the backlog: with `depth` requests ahead and
    // `workers` servers draining them, the queue needs about
    // depth/workers service times to fall below the mark again.
    const util::SimTime drain = static_cast<util::SimTime>(
        (d.depth / policy_.workers + 1) * static_cast<std::uint64_t>(service));
    d.retry_after = std::max(policy_.busy_retry_after, drain);
    return d;
  }

  util::SimTime free = free_at_.top();
  free_at_.pop();
  const util::SimTime start = std::max(now, free);
  d.wait = start - now;
  free_at_.push(start + service);
  starts_.push_back(start);
  ++admitted_;
  peak_depth_ = std::max(peak_depth_, depth(now));
  return d;
}

TokenBucket::TokenBucket(double capacity, double refill_per_second)
    : capacity_(capacity), refill_per_second_(refill_per_second),
      tokens_(capacity) {}

void TokenBucket::refill(util::SimTime now) {
  if (now <= updated_) return;
  tokens_ = std::min(capacity_,
                     tokens_ + refill_per_second_ * util::to_seconds(now - updated_));
  updated_ = now;
}

bool TokenBucket::try_take(util::SimTime now) {
  if (unlimited()) return true;
  refill(now);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::tokens(util::SimTime now) const {
  if (unlimited()) return 0;
  TokenBucket copy = *this;
  copy.refill(now);
  return copy.tokens_;
}

bool CircuitBreaker::allow(util::SimTime now) {
  if (policy_.failure_threshold <= 0) return true;
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - opened_at_ >= policy_.cooldown) {
        state_ = State::kHalfOpen;
        probe_in_flight_ = true;
        return true;  // the probe
      }
      return false;
    case State::kHalfOpen:
      // One probe at a time; everything else fast-fails until it resolves.
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return true;
      }
      return false;
  }
  return true;
}

void CircuitBreaker::record_success() {
  if (policy_.failure_threshold <= 0) return;
  if (state_ != State::kClosed) ++recloses_;
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::record_failure(util::SimTime now) {
  if (policy_.failure_threshold <= 0) return;
  if (state_ == State::kHalfOpen) {
    // The probe failed: back to a full cooldown.
    state_ = State::kOpen;
    opened_at_ = now;
    probe_in_flight_ = false;
    ++opens_;
    return;
  }
  if (state_ == State::kOpen) return;  // already open; nothing to count
  if (++consecutive_failures_ >= policy_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = now;
    ++opens_;
  }
}

}  // namespace p2pdrm::net
