// Network frontends for the backend services: each node owns (or shares)
// a service object, parses request envelopes off the wire, runs the
// handler, and sends the response envelope back. Malformed packets are
// dropped (and counted under "server.drops{malformed}" when a registry is
// bound) — retries are the client's job.
//
// Handler processing time is modeled per request (the service objects
// compute instantly in-process; a real server would not), so end-to-end
// latencies over this network include both propagation and service time.
// With an OverloadPolicy set (set_overload_policy), requests additionally
// wait in a bounded c-worker queue before service, and admission control
// sheds excess load with kBusy responses — see net/overload.h.
#pragma once

#include <memory>

#include "net/envelope.h"
#include "net/network.h"
#include "net/overload.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "p2p/peer.h"
#include "services/channel_manager.h"
#include "services/channel_policy_manager.h"
#include "services/channel_server.h"
#include "services/redirection_manager.h"
#include "services/user_manager.h"

namespace p2pdrm::net {

/// Per-request-kind processing delay applied before a response leaves the
/// node. Zero by default (pure propagation).
struct ProcessingModel {
  util::SimTime light = 0;   // redirect, LOGIN1, SWITCH1, channel list
  util::SimTime heavy = 0;   // LOGIN2, SWITCH2 (RSA sign), JOIN
};

class RedirectionNode final : public Node {
 public:
  RedirectionNode(services::RedirectionManager& rm, Network& network,
                  util::NodeId self, ProcessingModel processing = {});
  void on_packet(const Packet& packet) override;
  /// Record a serve span per handled request (null to disable).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  /// Count drops/sheds and export queue depth (null to disable).
  void set_registry(obs::Registry* registry) { registry_ = registry; }
  /// Install a bounded worker queue + admission control. A disabled policy
  /// (workers == 0) restores the legacy instantaneous model.
  void set_overload_policy(const OverloadPolicy& policy);
  const ServiceQueue* queue() const { return queue_.get(); }

 private:
  obs::Tracer* tracer_ = nullptr;
  obs::Registry* registry_ = nullptr;
  std::unique_ptr<ServiceQueue> queue_;
  services::RedirectionManager& rm_;
  Network& network_;
  util::NodeId self_;
  ProcessingModel processing_;
};

class UserManagerNode final : public Node {
 public:
  UserManagerNode(services::UserManager& um, Network& network, util::NodeId self,
                  ProcessingModel processing = {});
  void on_packet(const Packet& packet) override;
  /// Record a serve span per handled request (null to disable).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  /// Count drops/sheds and export queue depth (null to disable).
  void set_registry(obs::Registry* registry) { registry_ = registry; }
  /// Install a bounded worker queue + admission control. A disabled policy
  /// (workers == 0) restores the legacy instantaneous model.
  void set_overload_policy(const OverloadPolicy& policy);
  const ServiceQueue* queue() const { return queue_.get(); }

 private:
  obs::Tracer* tracer_ = nullptr;
  obs::Registry* registry_ = nullptr;
  std::unique_ptr<ServiceQueue> queue_;
  services::UserManager& um_;
  Network& network_;
  util::NodeId self_;
  ProcessingModel processing_;
};

class ChannelPolicyNode final : public Node {
 public:
  ChannelPolicyNode(services::ChannelPolicyManager& cpm, Network& network,
                    util::NodeId self, ProcessingModel processing = {});
  void on_packet(const Packet& packet) override;
  /// Record a serve span per handled request (null to disable).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  /// Count drops/sheds and export queue depth (null to disable).
  void set_registry(obs::Registry* registry) { registry_ = registry; }
  /// Install a bounded worker queue + admission control. A disabled policy
  /// (workers == 0) restores the legacy instantaneous model.
  void set_overload_policy(const OverloadPolicy& policy);
  const ServiceQueue* queue() const { return queue_.get(); }

 private:
  obs::Tracer* tracer_ = nullptr;
  obs::Registry* registry_ = nullptr;
  std::unique_ptr<ServiceQueue> queue_;
  services::ChannelPolicyManager& cpm_;
  Network& network_;
  util::NodeId self_;
  ProcessingModel processing_;
};

class ChannelManagerNode final : public Node {
 public:
  ChannelManagerNode(services::ChannelManager& cm, Network& network, util::NodeId self,
                     ProcessingModel processing = {});
  void on_packet(const Packet& packet) override;
  /// Record a serve span per handled request (null to disable).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  /// Count drops/sheds and export queue depth (null to disable).
  void set_registry(obs::Registry* registry) { registry_ = registry; }
  /// Install a bounded worker queue + admission control. A disabled policy
  /// (workers == 0) restores the legacy instantaneous model.
  void set_overload_policy(const OverloadPolicy& policy);
  const ServiceQueue* queue() const { return queue_.get(); }

 private:
  obs::Tracer* tracer_ = nullptr;
  obs::Registry* registry_ = nullptr;
  std::unique_ptr<ServiceQueue> queue_;
  services::ChannelManager& cm_;
  Network& network_;
  util::NodeId self_;
  ProcessingModel processing_;
};

/// A peer in the overlay: answers joins and renewal presentations, relays
/// key blobs to children, forwards content packets down the tree, and
/// hands received content to an optional sink (the player).
class PeerNode : public Node {
 public:
  using ContentSink =
      std::function<void(const core::ContentPacket&, const std::optional<util::Bytes>&)>;
  /// Called after each accepted join with the new child and the updated
  /// child count (trackers subscribe to keep load fresh).
  using JoinObserver = std::function<void(util::NodeId child, std::size_t children)>;

  PeerNode(std::unique_ptr<p2p::Peer> peer, Network& network,
           ProcessingModel processing = {});

  void on_packet(const Packet& packet) override;

  p2p::Peer& peer() { return *peer_; }
  const p2p::Peer& peer() const { return *peer_; }
  util::NodeId id() const { return peer_->config().node; }

  void set_content_sink(ContentSink sink) { content_sink_ = std::move(sink); }
  /// Record a serve span per handled join/renewal (null to disable).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  /// Count malformed-packet drops (null to disable).
  void set_registry(obs::Registry* registry) { registry_ = registry; }
  void set_join_observer(JoinObserver observer) { join_observer_ = std::move(observer); }

  /// Push a key blob to every child (root use; relays do it on receipt).
  /// `request_id` stamps every blob of this epoch so the trace interceptor
  /// and relay spans can correlate the whole fan-out under one rotation
  /// span (0 = untraced legacy announcements).
  void announce_key(const core::ContentKey& key, std::uint64_t request_id = 0);
  /// Encrypt nothing — forward an already-encrypted packet to all children.
  void forward_content(const core::ContentPacket& packet);

  std::uint64_t content_received() const { return content_received_; }
  std::uint64_t keys_relayed() const { return keys_relayed_; }

 protected:
  Network& network() { return network_; }

 private:
  std::unique_ptr<p2p::Peer> peer_;
  Network& network_;
  obs::Tracer* tracer_ = nullptr;
  obs::Registry* registry_ = nullptr;
  ProcessingModel processing_;
  ContentSink content_sink_;
  JoinObserver join_observer_;
  std::uint64_t content_received_ = 0;
  std::uint64_t keys_relayed_ = 0;
  /// Epoch request id whose relay span this node last bound (so the next
  /// epoch can release the binding — hop-fate callbacks resolve at arrival
  /// time, after on_packet returns, so unbinding inline would orphan them).
  std::uint64_t bound_epoch_ = 0;
};

}  // namespace p2pdrm::net
