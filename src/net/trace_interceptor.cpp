#include "net/trace_interceptor.h"

namespace p2pdrm::net {
namespace {

const char* fate_name(PacketFate fate) {
  switch (fate) {
    case PacketFate::kInterceptorDropped: return "injected-drop";
    case PacketFate::kLinkDropped: return "link-drop";
    case PacketFate::kInFlight: return "in-flight";
    case PacketFate::kDelivered: return "delivered";
    case PacketFate::kNoDestination: return "no-destination";
  }
  return "?";
}

}  // namespace

TraceInterceptor::Verdict TraceInterceptor::on_send(const SendContext&) {
  return {};  // observe only
}

void TraceInterceptor::on_packet_fate(const SendContext& ctx, PacketFate fate,
                                      util::SimTime delay) {
  // One span per *final* fate; the in-flight notification is skipped so a
  // delivered packet yields exactly one hop span covering its flight.
  if (fate == PacketFate::kInFlight) return;

  std::string name = "hop ?";
  obs::SpanId parent = 0;
  if (ctx.data != nullptr) {
    if (const auto env = Envelope::decode(*ctx.data)) {
      name = "hop " + std::string(to_string(env->kind));
      parent = tracer_.bound_request(ctx.from, env->request_id);
      if (parent == 0) parent = tracer_.bound_request(ctx.to, env->request_id);
    }
  }

  const bool arrived = fate == PacketFate::kDelivered;
  const util::SimTime start =
      fate == PacketFate::kDelivered || fate == PacketFate::kNoDestination
          ? ctx.now - delay  // arrival-time callback; span covers the flight
          : ctx.now;         // dropped at send time: zero-length span
  const obs::SpanId span =
      tracer_.begin_span("net", std::move(name), ctx.from, start, parent);
  tracer_.tag(span, "fate", fate_name(fate));
  tracer_.tag(span, "to", std::to_string(ctx.to));
  tracer_.tag(span, "bytes", std::to_string(ctx.bytes));
  tracer_.end_span(span, ctx.now, arrived);
}

}  // namespace p2pdrm::net
