// Message envelope for the simulated network deployment.
//
// Every datagram on the simulated wire is an Envelope: a kind tag, a
// request id for matching responses to outstanding requests (and discarding
// stale retransmissions), and the protocol message bytes. Service frontends
// parse the payload with the core codecs; anything malformed is dropped,
// exactly as a UDP service would.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.h"
#include "util/wire.h"

namespace p2pdrm::net {

enum class MsgKind : std::uint8_t {
  kRedirectRequest = 1,
  kRedirectResponse = 2,
  kLogin1Request = 3,
  kLogin1Response = 4,
  kLogin2Request = 5,
  kLogin2Response = 6,
  kChannelListRequest = 7,
  kChannelListResponse = 8,
  kSwitch1Request = 9,
  kSwitch1Response = 10,
  kSwitch2Request = 11,
  kSwitch2Response = 12,
  kJoinRequest = 13,
  kJoinResponse = 14,
  kRenewalPresent = 15,
  kRenewalAck = 16,
  kKeyBlob = 17,       // content key, wrapped for one link (one-way)
  kContent = 18,       // content packet (one-way)
};

std::string_view to_string(MsgKind kind);

struct Envelope {
  MsgKind kind = MsgKind::kRedirectRequest;
  std::uint64_t request_id = 0;
  util::Bytes payload;

  util::Bytes encode() const;
  /// nullopt on malformed input (dropped at the receiver).
  static std::optional<Envelope> decode(util::BytesView data);
};

}  // namespace p2pdrm::net
