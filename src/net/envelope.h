// Message envelope for the simulated network deployment.
//
// Every datagram on the simulated wire is an Envelope: a kind tag, a
// request id for matching responses to outstanding requests (and discarding
// stale retransmissions), and the protocol message bytes. Service frontends
// parse the payload with the core codecs; anything malformed is dropped,
// exactly as a UDP service would.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.h"
#include "util/time.h"
#include "util/wire.h"

namespace p2pdrm::net {

enum class MsgKind : std::uint8_t {
  kRedirectRequest = 1,
  kRedirectResponse = 2,
  kLogin1Request = 3,
  kLogin1Response = 4,
  kLogin2Request = 5,
  kLogin2Response = 6,
  kChannelListRequest = 7,
  kChannelListResponse = 8,
  kSwitch1Request = 9,
  kSwitch1Response = 10,
  kSwitch2Request = 11,
  kSwitch2Response = 12,
  kJoinRequest = 13,
  kJoinResponse = 14,
  kRenewalPresent = 15,
  kRenewalAck = 16,
  kKeyBlob = 17,       // content key, wrapped for one link (one-way)
  kContent = 18,       // content packet (one-way)
  kBusy = 19,          // admission control shed the request; payload is a
                       // BusyPayload with a retry-after hint
};

std::string_view to_string(MsgKind kind);

/// Payload of a kBusy envelope: the server shed this request at admission
/// (queue past its bound or past the high-water mark for sheddable kinds)
/// and tells the client when a retransmission has a chance of being
/// admitted. Never silent: every shed request gets one of these.
struct BusyPayload {
  /// Ceiling on the hint a well-formed server may send; decode rejects
  /// anything above it (a corrupt or hostile hint must not park a client
  /// forever).
  static constexpr util::SimTime kMaxRetryAfter = 10 * util::kMinute;

  util::SimTime retry_after = 0;   // earliest useful retransmit, relative
  std::uint32_t queue_depth = 0;   // server backlog when it shed (diagnostic)

  util::Bytes encode() const;
  /// Throws util::WireError on truncation, trailing bytes, a negative
  /// retry-after, or one above kMaxRetryAfter.
  static BusyPayload decode(util::BytesView data);
};

struct Envelope {
  MsgKind kind = MsgKind::kRedirectRequest;
  std::uint64_t request_id = 0;
  util::Bytes payload;

  util::Bytes encode() const;
  /// nullopt on malformed input (dropped at the receiver).
  static std::optional<Envelope> decode(util::BytesView data);
};

}  // namespace p2pdrm::net
