// Network-hop trace capture: a SendInterceptor that records one span per
// packet fate. It never alters a verdict — it rides the chain purely for
// visibility, so a run traces identically with or without a fault engine
// installed ahead of it.
//
// Each hop span is parented to the client attempt that put the request id
// in flight (looked up in the tracer's request-binding table under the
// sender, then the receiver — responses travel server->client), so injected
// drops, link losses, and deliveries all land under the protocol round that
// suffered them without any wire-format change.
#pragma once

#include "net/envelope.h"
#include "net/network.h"
#include "obs/trace.h"

namespace p2pdrm::net {

class TraceInterceptor final : public SendInterceptor {
 public:
  explicit TraceInterceptor(obs::Tracer& tracer) : tracer_(tracer) {}

  Verdict on_send(const SendContext& ctx) override;
  void on_packet_fate(const SendContext& ctx, PacketFate fate,
                      util::SimTime delay) override;

 private:
  obs::Tracer& tracer_;
};

}  // namespace p2pdrm::net
