#include "net/async_client.h"

#include <algorithm>

#include "core/client_flows.h"

namespace p2pdrm::net {

using client::Round;
using core::DrmError;

AsyncClient::AsyncClient(Config config, Network& network, crypto::SecureRandom rng)
    : config_(std::move(config)), network_(network), rng_(std::move(rng)),
      keys_(crypto::generate_rsa_keypair(rng_, config_.key_bits)) {
  if (config_.retry_budget > 0) {
    for (auto& bucket : retry_budgets_) {
      bucket = TokenBucket(config_.retry_budget,
                           config_.retry_budget_refill_per_second);
    }
  }
  network_.attach(config_.node, config_.addr, this);
}

bool AsyncClient::spend_retry_token(Round round) {
  return retry_budgets_[static_cast<std::size_t>(round)].try_take(
      network_.now());
}

CircuitBreaker& AsyncClient::breaker_for(util::NodeId node) {
  const auto it = breakers_.find(node);
  if (it != breakers_.end()) return it->second;
  CircuitBreaker::Policy policy;
  policy.failure_threshold = config_.breaker_failure_threshold;
  policy.cooldown = config_.breaker_cooldown;
  return breakers_.emplace(node, CircuitBreaker(policy)).first->second;
}

void AsyncClient::fail_pending(std::uint64_t request_id, Pending pending,
                               const char* outcome, DrmError err) {
  close_request_spans(request_id, pending, /*ok=*/false, outcome);
  record(pending.round, pending.started, false);
  if (pending.on_fail) pending.on_fail(err);
}

AsyncClient::~AsyncClient() {
  *alive_ = false;
  leave();
}

void AsyncClient::schedule(util::SimTime delay, std::function<void()> action) {
  // Timers post to this client's own transport group, so they are
  // serialized with the client's packet deliveries on both backends.
  network_.post(config_.node, delay,
                [alive = alive_, action = std::move(action)] {
    if (*alive) action();
  });
}

void AsyncClient::leave() {
  if (departed_) return;
  departed_ = true;
  ++renew_epoch_;  // cancel outstanding renewal timers
  auto_renew_ = false;
  starvation_recovery_ = false;
  // Drop every in-flight request: the retransmit-timeout and BUSY-deferred
  // resend closures key off pending_, so clearing it here guarantees no
  // timer can fire a send from (or re-arm for) a dead session. on_fail is
  // deliberately not invoked — the session is over, nobody is listening.
  for (auto& [request_id, pending] : pending_) {
    close_request_spans(request_id, pending, /*ok=*/false, "departed");
  }
  pending_.clear();
  if (network_.attached(config_.node)) network_.detach(config_.node);
}

void AsyncClient::enable_starvation_recovery(util::SimTime gap) {
  starvation_recovery_ = true;
  starvation_gap_ = gap;
  last_content_ = network_.now();
  if (channel_ticket_) arm_starvation_watchdog();
}

void AsyncClient::arm_starvation_watchdog() {
  if (!starvation_recovery_ || departed_ || watchdog_armed_) return;
  watchdog_armed_ = true;
  schedule(starvation_gap_, [this] {
    watchdog_armed_ = false;
    if (departed_ || !starvation_recovery_) return;
    if (!channel_ticket_ || recovering_) {
      arm_starvation_watchdog();
      return;
    }
    if (network_.now() - last_content_ >= starvation_gap_) {
      // Starved: the parent is gone or the subtree died. Re-switch for a
      // fresh ticket and peer list (the paper's client does exactly this on
      // a dead parent; the Channel Manager logs it as a fresh view).
      recovering_ = true;
      ++starvation_recoveries_;
      const util::ChannelId channel = channel_ticket_->ticket.channel_id;
      switch_channel(channel, [this](DrmError) {
        recovering_ = false;
        last_content_ = network_.now();
      });
    }
    arm_starvation_watchdog();
  });
}

void AsyncClient::enable_auto_renewal(util::SimTime margin) {
  auto_renew_ = true;
  renew_margin_ = margin;
  if (channel_ticket_) schedule_auto_renewal();
}

void AsyncClient::schedule_auto_renewal() {
  if (!auto_renew_ || !channel_ticket_ || departed_) return;
  const std::uint64_t epoch = ++renew_epoch_;
  const util::SimTime due = std::max(
      channel_ticket_->ticket.expiry_time - renew_margin_, network_.now() + 1);
  schedule(due - network_.now(), [this, epoch] {
    if (departed_ || epoch != renew_epoch_ || !channel_ticket_) return;
    // Keep the User Ticket ahead of the Channel Ticket: re-login first when
    // it would expire before the renewed Channel Ticket needs it.
    const auto renew = [this](DrmError) {
      renew_channel_ticket([this](DrmError err) {
        if (err == DrmError::kOk) {
          schedule_auto_renewal();
          return;
        }
        // Renewal (and, with resilience on, the recovery behind it) failed.
        // A session recovery may still be running — the re-switch it ends
        // with re-arms this timer — but if nothing else is in flight, kick
        // off a recovery ourselves rather than silently losing the session.
        if (config_.resilience && !departed_ && !session_recovery_active_) {
          recover_session([this](DrmError err2) {
            if (err2 == DrmError::kOk) schedule_auto_renewal();
          });
        }
      });
    };
    if (user_ticket_ &&
        user_ticket_->ticket.expiry_time - network_.now() < 2 * renew_margin_) {
      login(renew);
    } else {
      renew(DrmError::kOk);
    }
  });
}

void AsyncClient::bind_observability(obs::Registry* registry,
                                     obs::Tracer* tracer,
                                     obs::SloMonitor* slo) {
  registry_ = registry;
  tracer_ = tracer;
  slo_ = slo;
  if (registry_ != nullptr) {
    for (const Round r : {Round::kLogin1, Round::kLogin2, Round::kSwitch1,
                          Round::kSwitch2, Round::kJoin}) {
      round_hist_[static_cast<std::size_t>(r)] = &registry_->histogram(
          "client.round." + std::string(client::to_string(r)));
    }
    keys_delivered_ = &registry_->counter("keys.epochs_delivered");
    key_margin_hist_ = &registry_->histogram("keys.delivery_margin_us");
    key_staleness_gauge_ = &registry_->gauge("keys.max_staleness_us");
  } else {
    for (auto& h : round_hist_) h = nullptr;
    keys_delivered_ = nullptr;
    key_margin_hist_ = nullptr;
    key_staleness_gauge_ = nullptr;
  }
}

void AsyncClient::record(Round round, util::SimTime started, bool success) {
  const util::SimTime latency = network_.now() - started;
  feedback_.push_back({round, started, latency, success});
  if (success && round_hist_[static_cast<std::size_t>(round)] != nullptr) {
    round_hist_[static_cast<std::size_t>(round)]->record(latency);
  }
  if (success && slo_ != nullptr) {
    slo_->observe(client::to_string(round), network_.now(), latency);
  }
}

void AsyncClient::on_key_installed(const core::ContentKey& key) {
  const util::SimTime now = network_.now();
  if (keys_delivered_ != nullptr) {
    keys_delivered_->inc();
    // Margin: how far ahead of activation the epoch landed (0 = late).
    const util::SimTime margin = key.activation - now;
    key_margin_hist_->record(margin > 0 ? margin : 0);
    if (margin < 0 && -margin > key_staleness_gauge_->value()) {
      key_staleness_gauge_->set(-margin);
    }
  }
  if (key_delivery_hook_) key_delivery_hook_(key, now);
}

void AsyncClient::close_request_spans(std::uint64_t request_id, Pending& pending,
                                      bool ok, const char* outcome) {
  if (tracer_ == nullptr) return;
  const util::SimTime now = network_.now();
  tracer_->end_span(pending.attempt_span, now, ok);
  tracer_->tag(pending.span, "outcome", outcome);
  tracer_->end_span(pending.span, now, ok);
  tracer_->unbind_request(config_.node, request_id);
}

void AsyncClient::send_request(util::NodeId to, MsgKind kind, util::Bytes payload,
                               MsgKind expect, Round round,
                               std::function<void(const Envelope&)> on_response,
                               Callback on_fail) {
  if (config_.breaker_failure_threshold > 0 &&
      !breaker_for(to).allow(network_.now())) {
    // The breaker is open: this destination keeps timing out, so fail fast
    // instead of burning a full timeout ladder. The resilience layer treats
    // it like any other failed round (failover to an alternate instance).
    ++breaker_fast_fails_;
    if (registry_ != nullptr) {
      registry_->counter("client.breaker.fast_fail").inc();
    }
    const util::SimTime started = network_.now();
    schedule(0, [this, round, started, on_fail = std::move(on_fail)] {
      record(round, started, false);
      if (on_fail) on_fail(DrmError::kNoCapacity);
    });
    return;
  }
  const std::uint64_t request_id = next_request_id_++;
  Envelope env;
  env.kind = kind;
  env.request_id = request_id;
  env.payload = std::move(payload);

  Pending pending;
  pending.expect = expect;
  pending.to = to;
  pending.wire = env.encode();
  pending.retries_left = config_.max_retries;
  pending.round = round;
  pending.started = network_.now();
  pending.on_response = std::move(on_response);
  pending.on_fail = std::move(on_fail);
  if (tracer_ != nullptr) {
    // One span for the whole request, one child per transmission attempt;
    // the binding lets the network's trace interceptor and the serving node
    // parent their spans under the in-flight attempt.
    pending.span = tracer_->begin_span("client", std::string(client::to_string(round)),
                                       config_.node, pending.started);
    tracer_->tag(pending.span, "kind", std::string(to_string(kind)));
    tracer_->tag(pending.span, "to", std::to_string(to));
    pending.attempt_span = tracer_->begin_span("client", "attempt", config_.node,
                                               pending.started, pending.span);
    tracer_->bind_request(config_.node, request_id, pending.attempt_span);
  }
  const util::Bytes wire = pending.wire;
  pending_.emplace(request_id, std::move(pending));

  network_.send(config_.node, to, wire);
  arm_timeout(request_id);
}

void AsyncClient::arm_timeout(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  const std::uint64_t attempt = it->second.attempt;

  // Exponential backoff with jitter: attempt k waits factor^k times the
  // base timeout (capped), stretched by up to `jitter` so clients that all
  // lost the same manager do not hammer its replacement in lockstep.
  const int step = config_.max_retries - it->second.retries_left;
  double timeout = static_cast<double>(config_.request_timeout);
  for (int i = 0; i < step; ++i) timeout *= config_.backoff_factor;
  timeout = std::min(timeout, static_cast<double>(config_.max_timeout));
  if (config_.jitter > 0) timeout *= 1.0 + config_.jitter * rng_.uniform_real();

  schedule(static_cast<util::SimTime>(timeout), [this, request_id, attempt] {
    const auto p = pending_.find(request_id);
    if (p == pending_.end() || p->second.attempt != attempt) return;  // resolved
    if (p->second.retries_left > 0) {
      if (!spend_retry_token(p->second.round)) {
        // Retries remain but the round's budget is dry: a fleet-wide outage
        // must not multiply the offered load. Fail the operation instead.
        ++retry_budget_exhaustions_;
        if (registry_ != nullptr) {
          registry_->counter("client.retry_budget.exhausted").inc();
        }
        Pending failed = std::move(p->second);
        pending_.erase(p);
        if (config_.breaker_failure_threshold > 0) {
          breaker_for(failed.to).record_failure(network_.now());
        }
        fail_pending(request_id, std::move(failed), "budget",
                     DrmError::kNoCapacity);
        return;
      }
      --p->second.retries_left;
      ++p->second.attempt;
      ++retransmits_;
      if (tracer_ != nullptr) {
        // The old attempt timed out; open a fresh child span and rebind the
        // request id to it so later hops/serves parent under the right one.
        const util::SimTime now = network_.now();
        tracer_->end_span(p->second.attempt_span, now, /*ok=*/false);
        tracer_->event(p->second.span, now, "retransmit",
                       "attempt " + std::to_string(p->second.attempt));
        p->second.attempt_span = tracer_->begin_span(
            "client", "attempt", config_.node, now, p->second.span);
        tracer_->bind_request(config_.node, request_id, p->second.attempt_span);
      }
      network_.send(config_.node, p->second.to, p->second.wire);
      arm_timeout(request_id);
      return;
    }
    // Give up: record the failed round and fail the operation.
    ++timeout_exhaustions_;
    Pending failed = std::move(p->second);
    pending_.erase(p);
    if (config_.breaker_failure_threshold > 0) {
      breaker_for(failed.to).record_failure(network_.now());
    }
    fail_pending(request_id, std::move(failed), "timeout", DrmError::kNoCapacity);
  });
}

void AsyncClient::on_packet(const Packet& packet) {
  const auto env = Envelope::decode(packet.data);
  if (!env) return;

  // Peer-plane messages are served by the embedded overlay half.
  switch (env->kind) {
    case MsgKind::kJoinRequest:
    case MsgKind::kRenewalPresent:
    case MsgKind::kKeyBlob:
    case MsgKind::kContent:
      if (peer_node_) peer_node_->on_packet(packet);
      return;
    default:
      break;
  }

  if (env->kind == MsgKind::kBusy) {
    handle_busy(*env);
    return;
  }

  const auto it = pending_.find(env->request_id);
  if (it == pending_.end()) return;           // stale duplicate
  if (it->second.expect != env->kind) return; // mismatched response kind
  Pending pending = std::move(it->second);
  pending_.erase(it);
  if (config_.breaker_failure_threshold > 0) {
    breaker_for(pending.to).record_success();
  }
  close_request_spans(env->request_id, pending, /*ok=*/true, "ok");
  record(pending.round, pending.started, true);
  pending.on_response(*env);
}

void AsyncClient::handle_busy(const Envelope& env) {
  const auto it = pending_.find(env.request_id);
  if (it == pending_.end()) return;  // stale (the retransmit already won)
  BusyPayload busy;
  try {
    busy = BusyPayload::decode(env.payload);
  } catch (const util::WireError&) {
    return;  // corrupt BUSY; let the timeout machinery handle the request
  }
  Pending& pending = it->second;
  ++busy_received_;
  ++pending.attempt;  // the armed timeout is for a dead attempt now
  ++pending.busy_defers;
  if (registry_ != nullptr) registry_->counter("client.busy.received").inc();
  // A BUSY proves the destination is alive — it answered — so the breaker
  // sees a success even though the operation has not completed yet.
  if (config_.breaker_failure_threshold > 0) {
    breaker_for(pending.to).record_success();
  }
  if (pending.busy_defers > config_.busy_max_defers ||
      !spend_retry_token(pending.round)) {
    const bool budget_dry = pending.busy_defers <= config_.busy_max_defers;
    if (budget_dry) {
      ++retry_budget_exhaustions_;
      if (registry_ != nullptr) {
        registry_->counter("client.retry_budget.exhausted").inc();
      }
    }
    Pending failed = std::move(pending);
    pending_.erase(it);
    fail_pending(env.request_id, std::move(failed),
                 budget_dry ? "budget" : "busy", DrmError::kNoCapacity);
    return;
  }
  ++busy_deferred_resends_;
  if (registry_ != nullptr) registry_->counter("client.busy.deferred").inc();
  // Honor the server's hint, stretched by jitter so the shed cohort does
  // not re-arrive as one synchronized wave.
  double delay = static_cast<double>(std::max<util::SimTime>(
      busy.retry_after, config_.request_timeout / 4));
  if (config_.jitter > 0) delay *= 1.0 + config_.jitter * rng_.uniform_real();
  const std::uint64_t attempt = pending.attempt;
  const std::uint64_t request_id = env.request_id;
  if (tracer_ != nullptr) {
    const util::SimTime now = network_.now();
    tracer_->end_span(pending.attempt_span, now, /*ok=*/false);
    tracer_->event(pending.span, now, "busy",
                   "retry-after " + std::to_string(busy.retry_after) +
                       " depth " + std::to_string(busy.queue_depth));
  }
  schedule(static_cast<util::SimTime>(delay), [this, request_id, attempt] {
    const auto p = pending_.find(request_id);
    if (p == pending_.end() || p->second.attempt != attempt) return;
    if (tracer_ != nullptr) {
      const util::SimTime now = network_.now();
      p->second.attempt_span = tracer_->begin_span(
          "client", "attempt", config_.node, now, p->second.span);
      tracer_->bind_request(config_.node, request_id, p->second.attempt_span);
    }
    network_.send(config_.node, p->second.to, p->second.wire);
    arm_timeout(request_id);
  });
}

// ---------------------------------------------------------------------------
// Resilience: operation-level failover and session recovery

bool AsyncClient::permanent_failure(core::DrmError err) {
  return client::is_permanent_failure(err);
}

util::SimTime AsyncClient::recovery_backoff(int attempt) {
  double delay = static_cast<double>(config_.recovery_delay);
  for (int i = 0; i < attempt; ++i) delay *= 2.0;
  delay = std::min(delay, static_cast<double>(config_.max_recovery_delay));
  if (config_.jitter > 0) {
    // Equal-jitter: spread the wait over [delay/2, delay*(1 + jitter)) with
    // a single draw, so a cohort recovering from the same outage fans out
    // across half the backoff window instead of clustering near its top.
    delay = delay * 0.5 + delay * (0.5 + config_.jitter) * rng_.uniform_real();
  }
  return static_cast<util::SimTime>(delay);
}

void AsyncClient::run_resilient(std::function<void(Callback)> op, int attempt,
                                Callback done) {
  auto self_op = op;  // keep a copy for the retry closure
  op([this, op = std::move(self_op), attempt, done](DrmError err) {
    if (err == DrmError::kOk || departed_ || !config_.resilience ||
        permanent_failure(err) || attempt + 1 >= config_.max_recovery_attempts) {
      done(err);
      return;
    }
    // Fail over: drop the cached redirect and channel list so the next
    // attempt re-resolves the User Manager (the Redirection Manager steers
    // around dead farm instances) and refetches partition info (the CPM
    // re-points a partition at a surviving Channel Manager instance).
    ++failovers_;
    redirect_.reset();
    channels_.clear();
    partitions_.clear();
    schedule(recovery_backoff(attempt), [this, op, attempt, done] {
      if (departed_) {
        done(DrmError::kNoCapacity);
        return;
      }
      run_resilient(op, attempt + 1, done);
    });
  });
}

void AsyncClient::recover_session(Callback done) {
  if (session_recovery_active_ || departed_) {
    done(DrmError::kRenewalRefused);  // a recovery loop is already running
    return;
  }
  session_recovery_active_ = true;
  recover_session_attempt(network_.now(), 0, std::move(done));
}

void AsyncClient::recover_session_attempt(util::SimTime started, int attempt,
                                          Callback done) {
  if (departed_) {
    session_recovery_active_ = false;
    done(DrmError::kNoCapacity);
    return;
  }
  // Start from scratch: fresh redirect, fresh channel list, fresh login.
  redirect_.reset();
  channels_.clear();
  partitions_.clear();
  const util::ChannelId channel = current_channel_;
  do_login([this, started, attempt, channel, done](DrmError err) {
    const auto retry = [this, started, attempt, done](DrmError failure) {
      if (permanent_failure(failure)) {
        session_recovery_active_ = false;
        done(failure);
        return;
      }
      schedule(recovery_backoff(attempt), [this, started, attempt, done] {
        recover_session_attempt(started, std::min(attempt + 1, 16), done);
      });
    };
    if (err != DrmError::kOk) {
      retry(err);
      return;
    }
    ++relogins_;
    if (channel == 0) {  // never watched anything: logged in again is enough
      session_recovery_active_ = false;
      ++rejoins_;
      rejoin_latencies_.push_back(network_.now() - started);
      done(DrmError::kOk);
      return;
    }
    do_switch_channel(channel, [this, started, retry, done](DrmError err2) {
      if (err2 != DrmError::kOk) {
        retry(err2);
        return;
      }
      session_recovery_active_ = false;
      ++rejoins_;
      rejoin_latencies_.push_back(network_.now() - started);
      done(DrmError::kOk);
    });
  });
}

// ---------------------------------------------------------------------------
// Login

void AsyncClient::login(Callback done) {
  if (!config_.resilience) {
    do_login(std::move(done));
    return;
  }
  run_resilient([this](Callback cb) { do_login(std::move(cb)); }, 0,
                std::move(done));
}

void AsyncClient::switch_channel(util::ChannelId channel, Callback done) {
  if (!config_.resilience) {
    do_switch_channel(channel, std::move(done));
    return;
  }
  run_resilient(
      [this, channel](Callback cb) {
        // After a failover the cached session may be gone; re-login first
        // when the channel list (with its partition info) was dropped.
        if (!user_ticket_ || channels_.empty()) {
          do_login([this, channel, cb](DrmError err) {
            if (err != DrmError::kOk) {
              cb(err);
              return;
            }
            do_switch_channel(channel, cb);
          });
          return;
        }
        do_switch_channel(channel, std::move(cb));
      },
      0, std::move(done));
}

void AsyncClient::renew_channel_ticket(Callback done) {
  if (!config_.resilience) {
    do_renew_channel_ticket(std::move(done));
    return;
  }
  do_renew_channel_ticket([this, done](DrmError err) {
    if (err == DrmError::kOk || departed_ || permanent_failure(err)) {
      done(err);
      return;
    }
    // The renewal window closed, the manager lost our viewing-log entry in
    // a crash, or the farm is unreachable: the session is as good as lost.
    // Re-login and re-join instead of clinging to the expiring ticket.
    recover_session(std::move(done));
  });
}

void AsyncClient::do_login(Callback done) {
  if (!redirect_) {
    services::RedirectRequest req{config_.email};
    send_request(
        config_.redirection_node, MsgKind::kRedirectRequest, req.encode(),
        MsgKind::kRedirectResponse, Round::kLogin1,
        [this, done](const Envelope& env) {
          try {
            services::RedirectResponse resp =
                services::RedirectResponse::decode(env.payload);
            if (!resp.found) {
              done(DrmError::kUnknownUser);
              return;
            }
            redirect_ = std::move(resp);
          } catch (const util::WireError&) {
            done(DrmError::kBadTicket);
            return;
          }
          start_login1(done);
        },
        done);
    return;
  }
  start_login1(done);
}

void AsyncClient::start_login1(Callback done) {
  const auto um_node = network_.node_at(redirect_->user_manager.addr);
  if (!um_node) {
    // The cached redirect points at nothing — stale, or poisoned by a
    // corrupted-but-decodable RedirectResponse (wire fuzzing provokes
    // exactly this). Drop it so the next login re-resolves instead of
    // failing locally forever; run_resilient already resets it on
    // failover, this heals the plain-client path too.
    redirect_.reset();
    done(DrmError::kWrongDomain);
    return;
  }
  core::Login1Request req;
  req.email = config_.email;
  req.client_public_key = keys_.pub;
  req.client_version = config_.client_version;

  send_request(
      *um_node, MsgKind::kLogin1Request, req.encode(), MsgKind::kLogin1Response,
      Round::kLogin1,
      [this, done, um_node](const Envelope& env) {
        core::Login1Response resp1;
        try {
          resp1 = core::Login1Response::decode(env.payload);
        } catch (const util::WireError&) {
          done(DrmError::kBadTicket);
          return;
        }
        if (resp1.error != DrmError::kOk) {
          // A wrong-domain refusal means the redirect steered us to a User
          // Manager that does not own this account: re-resolve next login.
          if (resp1.error == DrmError::kWrongDomain) redirect_.reset();
          done(resp1.error);
          return;
        }
        const auto opened = core::open_login1_response(resp1, config_.password);
        if (!opened) {
          done(DrmError::kBadCredentials);
          return;
        }
        const core::Login2Request req2 =
            core::build_login2_request(*opened, config_.email, keys_,
                                       config_.client_version, config_.client_binary);
        const util::SimTime started = network_.now();
        send_request(
            *um_node, MsgKind::kLogin2Request, req2.encode(),
            MsgKind::kLogin2Response, Round::kLogin2,
            [this, done, started](const Envelope& env2) {
              core::Login2Response resp2;
              try {
                resp2 = core::Login2Response::decode(env2.payload);
              } catch (const util::WireError&) {
                done(DrmError::kBadTicket);
                return;
              }
              after_login2(resp2, started, done);
            },
            done);
      },
      done);
}

void AsyncClient::after_login2(const core::Login2Response& resp,
                               util::SimTime /*started*/, Callback done) {
  if (resp.error != DrmError::kOk) {
    done(resp.error);
    return;
  }
  if (!resp.ticket) {
    done(DrmError::kBadCredentials);
    return;
  }
  previous_user_ticket_ = std::move(user_ticket_);
  user_ticket_ = resp.ticket;

  // utime comparison against the previous ticket (§IV-B).
  std::vector<std::string> stale;
  if (previous_user_ticket_) {
    for (const core::Attribute& a : user_ticket_->ticket.attributes.items()) {
      if (a.utime == util::kNullTime) continue;
      const core::Attribute* old = previous_user_ticket_->ticket.attributes.find(a.name);
      if (old == nullptr || old->utime == util::kNullTime || a.utime > old->utime) {
        stale.push_back(a.name);
      }
    }
  }
  if (channels_.empty()) {
    maybe_fetch_channel_list({}, std::move(done));
  } else if (!stale.empty()) {
    maybe_fetch_channel_list(std::move(stale), std::move(done));
  } else {
    done(DrmError::kOk);
  }
}

void AsyncClient::maybe_fetch_channel_list(std::vector<std::string> stale,
                                           Callback done) {
  const auto cpm_node = network_.node_at(redirect_->channel_policy_manager.addr);
  if (!cpm_node) {
    done(DrmError::kOk);  // no CPM deployed: proceed without a list
    return;
  }
  core::ChannelListRequest req;
  req.user_ticket = user_ticket_->encode();
  req.stale_attributes = std::move(stale);
  const bool full = req.stale_attributes.empty();

  send_request(
      *cpm_node, MsgKind::kChannelListRequest, req.encode(),
      MsgKind::kChannelListResponse, Round::kLogin2,
      [this, done, full](const Envelope& env) {
        try {
          core::ChannelListResponse resp =
              core::ChannelListResponse::decode(env.payload);
          if (resp.error != DrmError::kOk) {
            done(resp.error);
            return;
          }
          if (full) {
            channels_ = std::move(resp.channels);
          } else {
            for (core::ChannelRecord& fresh : resp.channels) {
              bool replaced = false;
              for (core::ChannelRecord& cached : channels_) {
                if (cached.id == fresh.id) {
                  cached = std::move(fresh);
                  replaced = true;
                  break;
                }
              }
              if (!replaced) channels_.push_back(std::move(fresh));
            }
          }
          if (!resp.partitions.empty()) partitions_ = std::move(resp.partitions);
          done(DrmError::kOk);
        } catch (const util::WireError&) {
          done(DrmError::kBadTicket);
        }
      },
      done);
}

// ---------------------------------------------------------------------------
// Channel switching + join

std::uint32_t AsyncClient::partition_of(util::ChannelId channel) const {
  for (const core::ChannelRecord& c : channels_) {
    if (c.id == channel) return c.partition;
  }
  return 0;
}

std::optional<util::NodeId> AsyncClient::manager_node(std::uint32_t partition) const {
  for (const core::PartitionInfo& p : partitions_) {
    if (p.partition == partition) return network_.node_at(p.manager_addr);
  }
  return std::nullopt;
}

void AsyncClient::do_switch_channel(util::ChannelId channel, Callback done) {
  if (!user_ticket_) {
    done(DrmError::kBadTicket);
    return;
  }
  const auto cm_node = manager_node(partition_of(channel));
  if (!cm_node) {
    // The cached channel list cannot route this switch — stale, or poisoned
    // by a corrupted-but-decodable listing response (wire fuzzing provokes
    // exactly this). Drop the cache so the next login refetches instead of
    // looping on the same bad list; the resilient recovery path already
    // clears these, this heals the plain-client path too. The redirect goes
    // with them: a poisoned CPM address silently skips the list refetch.
    redirect_.reset();
    channels_.clear();
    partitions_.clear();
    done(DrmError::kWrongPartition);
    return;
  }
  core::Switch1Request req1;
  req1.user_ticket = user_ticket_->encode();
  req1.channel_id = channel;

  send_request(
      *cm_node, MsgKind::kSwitch1Request, req1.encode(), MsgKind::kSwitch1Response,
      Round::kSwitch1,
      [this, done, cm_node, channel,
       user_ticket = req1.user_ticket](const Envelope& env) {
        core::Switch1Response resp1;
        try {
          resp1 = core::Switch1Response::decode(env.payload);
        } catch (const util::WireError&) {
          done(DrmError::kBadTicket);
          return;
        }
        if (resp1.error != DrmError::kOk) {
          done(resp1.error);
          return;
        }
        const core::Switch2Request req2 = core::build_switch2_request(
            resp1, user_ticket, channel, {}, keys_.priv);
        send_request(
            *cm_node, MsgKind::kSwitch2Request, req2.encode(),
            MsgKind::kSwitch2Response, Round::kSwitch2,
            [this, done, channel](const Envelope& env2) {
              core::Switch2Response resp2;
              try {
                resp2 = core::Switch2Response::decode(env2.payload);
              } catch (const util::WireError&) {
                done(DrmError::kBadTicket);
                return;
              }
              if (resp2.error != DrmError::kOk) {
                done(resp2.error);
                return;
              }
              if (!resp2.ticket) {
                done(DrmError::kAccessDenied);
                return;
              }
              channel_ticket_ = std::move(resp2.ticket);
              current_channel_ = channel;
              parent_.reset();

              // Fresh overlay half for the new channel; the network keeps
              // routing our node id to this AsyncClient, which delegates.
              crypto::RsaPublicKey cm_key;
              for (const core::PartitionInfo& p : partitions_) {
                if (p.partition == partition_of(channel)) {
                  cm_key = crypto::RsaPublicKey::decode(p.manager_public_key);
                }
              }
              p2p::PeerConfig pc;
              pc.node = config_.node;
              pc.addr = config_.addr;
              pc.channel = channel;
              pc.capacity = config_.peer_capacity;
              pc.substreams = config_.substreams;
              peer_node_ = std::make_unique<PeerNode>(
                  std::make_unique<p2p::Peer>(pc, keys_, cm_key, rng_.fork()),
                  network_);
              if (tracer_ != nullptr) peer_node_->set_tracer(tracer_);
              if (registry_ != nullptr) peer_node_->set_registry(registry_);
              peer_node_->peer().set_install_listener(
                  [this](const core::ContentKey& key) { on_key_installed(key); });
              reassembly_ = std::make_unique<p2p::SubstreamBuffer>(1024);
              router_.reset();
              peer_node_->set_content_sink(
                  [this](const core::ContentPacket& packet,
                         const std::optional<util::Bytes>& plain) {
                    last_content_ = network_.now();
                    if (plain) {
                      ++content_decrypted_;
                      content_in_order_ +=
                          reassembly_->insert(packet.seq, *plain).size();
                    } else {
                      ++content_undecryptable_;
                    }
                  });
              if (config_.substreams > 1) {
                auto state = std::make_shared<StripedJoin>();
                state->peers = std::move(resp2.peers);
                state->started = network_.now();
                // One join group per parent slot: group g carries the mask
                // of sub-streams g, g+k, g+2k, ... for k parent slots.
                const std::size_t slots =
                    std::min(config_.substreams,
                             std::max<std::size_t>(1, state->peers.size()));
                state->group_masks.assign(slots, 0);
                for (std::size_t s = 0; s < config_.substreams && s < 32; ++s) {
                  state->group_masks[s % slots] |= 1u << s;
                }
                join_striped(std::move(state), done);
              } else {
                try_join(std::move(resp2.peers), 0, network_.now(), done);
              }
            },
            done);
      },
      done);
}

void AsyncClient::try_join(std::vector<core::PeerInfo> peers, std::size_t index,
                           util::SimTime started, Callback done) {
  if (index >= peers.size()) {
    record(Round::kJoin, started, false);
    done(DrmError::kNoCapacity);
    return;
  }
  const core::PeerInfo target = peers[index];
  const core::JoinRequest req = peer_node_->peer().make_join_request(*channel_ticket_);
  send_request(
      target.node, MsgKind::kJoinRequest, req.encode(), MsgKind::kJoinResponse,
      Round::kJoin,
      [this, peers = std::move(peers), index, started, target,
       done](const Envelope& env) mutable {
        core::JoinResponse resp;
        try {
          resp = core::JoinResponse::decode(env.payload);
        } catch (const util::WireError&) {
          try_join(std::move(peers), index + 1, started, done);
          return;
        }
        if (resp.error != DrmError::kOk ||
            !peer_node_->peer().complete_join(target.node, resp)) {
          try_join(std::move(peers), index + 1, started, done);
          return;
        }
        parent_ = target.node;
        if (auto_renew_) schedule_auto_renewal();
        if (starvation_recovery_) {
          last_content_ = network_.now();
          arm_starvation_watchdog();
        }
        done(DrmError::kOk);
      },
      [this, done, started](DrmError) {
        // Timeout on one candidate: give up on the whole join (the caller
        // can re-run switch_channel for a fresh peer list).
        record(Round::kJoin, started, false);
        done(DrmError::kNoCapacity);
      });
}

void AsyncClient::finish_join(util::SimTime /*started*/, Callback done) {
  // Per-attempt JOIN rounds were already recorded by send_request.
  if (auto_renew_) schedule_auto_renewal();
  if (starvation_recovery_) {
    last_content_ = network_.now();
    arm_starvation_watchdog();
  }
  done(DrmError::kOk);
}

void AsyncClient::join_striped(std::shared_ptr<StripedJoin> state, Callback done) {
  if (state->group >= state->group_masks.size()) {
    // All groups placed: install the router from the final assignment.
    router_ = std::make_unique<p2p::SubstreamRouter>(config_.substreams);
    for (const auto& [parent, mask] : state->assigned) {
      for (std::size_t s = 0; s < config_.substreams && s < 32; ++s) {
        if (mask & (1u << s)) router_->assign(s, parent);
      }
    }
    parent_ = state->assigned.begin()->first;
    finish_join(state->started, done);
    return;
  }
  if (state->candidate >= state->peers.size()) {
    record(client::Round::kJoin, state->started, false);
    done(DrmError::kNoCapacity);
    return;
  }

  // Spread groups over distinct candidates by starting each group's scan at
  // a different offset.
  const std::size_t index =
      (state->group + state->candidate) % state->peers.size();
  const core::PeerInfo target = state->peers[index];

  // If this parent already serves another group, request the union of masks
  // (a re-join replaces the link, so the request must carry everything).
  std::uint32_t mask = state->group_masks[state->group];
  const auto prev = state->assigned.find(target.node);
  if (prev != state->assigned.end()) mask |= prev->second;

  const core::JoinRequest req =
      peer_node_->peer().make_join_request(*channel_ticket_, mask);
  send_request(
      target.node, MsgKind::kJoinRequest, req.encode(), MsgKind::kJoinResponse,
      client::Round::kJoin,
      [this, state, target, mask, done](const Envelope& env) mutable {
        core::JoinResponse resp;
        bool accepted = false;
        try {
          resp = core::JoinResponse::decode(env.payload);
          accepted = resp.error == DrmError::kOk &&
                     peer_node_->peer().complete_join(target.node, resp);
        } catch (const util::WireError&) {
        }
        if (accepted) {
          state->assigned[target.node] = mask;
          ++state->group;
          state->candidate = 0;
        } else {
          ++state->candidate;
        }
        join_striped(state, done);
      },
      [this, state, done](DrmError) {
        ++state->candidate;
        join_striped(state, done);
      });
}

void AsyncClient::do_renew_channel_ticket(Callback done) {
  if (!user_ticket_ || !channel_ticket_) {
    done(DrmError::kBadTicket);
    return;
  }
  const util::ChannelId channel = channel_ticket_->ticket.channel_id;
  const auto cm_node = manager_node(partition_of(channel));
  if (!cm_node) {
    redirect_.reset();  // same cache-poisoning escape as do_switch_channel
    channels_.clear();
    partitions_.clear();
    done(DrmError::kWrongPartition);
    return;
  }
  core::Switch1Request req1;
  req1.user_ticket = user_ticket_->encode();
  req1.expiring_ticket = channel_ticket_->encode();

  send_request(
      *cm_node, MsgKind::kSwitch1Request, req1.encode(), MsgKind::kSwitch1Response,
      Round::kSwitch1,
      [this, done, cm_node, user_ticket = req1.user_ticket,
       expiring = req1.expiring_ticket](const Envelope& env) {
        core::Switch1Response resp1;
        try {
          resp1 = core::Switch1Response::decode(env.payload);
        } catch (const util::WireError&) {
          done(DrmError::kBadTicket);
          return;
        }
        if (resp1.error != DrmError::kOk) {
          done(resp1.error);
          return;
        }
        const core::Switch2Request req2 =
            core::build_switch2_request(resp1, user_ticket, 0, expiring, keys_.priv);
        send_request(
            *cm_node, MsgKind::kSwitch2Request, req2.encode(),
            MsgKind::kSwitch2Response, Round::kSwitch2,
            [this, done](const Envelope& env2) {
              core::Switch2Response resp2;
              try {
                resp2 = core::Switch2Response::decode(env2.payload);
              } catch (const util::WireError&) {
                done(DrmError::kBadTicket);
                return;
              }
              if (resp2.error != DrmError::kOk) {
                done(resp2.error);
                return;
              }
              if (!resp2.ticket || !resp2.ticket->ticket.renewal) {
                done(DrmError::kRenewalRefused);
                return;
              }
              channel_ticket_ = std::move(resp2.ticket);
              // Present the renewal to every parent — with multi-parent
              // delivery each of them tracks our ticket expiry. The first
              // parent's ack completes the operation; the rest are
              // best-effort.
              const std::vector<util::NodeId> parents =
                  peer_node_ ? peer_node_->peer().parents()
                             : std::vector<util::NodeId>{};
              if (parents.empty()) {
                done(DrmError::kOk);
                return;
              }
              for (std::size_t i = 1; i < parents.size(); ++i) {
                send_request(parents[i], MsgKind::kRenewalPresent,
                             channel_ticket_->encode(), MsgKind::kRenewalAck,
                             Round::kSwitch2, [](const Envelope&) {},
                             [](DrmError) {});
              }
              send_request(
                  parents[0], MsgKind::kRenewalPresent, channel_ticket_->encode(),
                  MsgKind::kRenewalAck, Round::kSwitch2,
                  [done](const Envelope&) { done(DrmError::kOk); },
                  [done](DrmError) { done(DrmError::kOk); });  // best effort
            },
            done);
      },
      done);
}

}  // namespace p2pdrm::net
