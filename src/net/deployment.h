// Full networked deployment over the discrete-event simulator: every
// manager is a network node, every client is an AsyncClient, all protocol
// bytes cross the lossy simulated wire with latency. The message-passing
// sibling of client::Testbed.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/async_client.h"
#include "net/service_nodes.h"
#include "p2p/tracker.h"
#include "services/account_manager.h"
#include "services/catalog.h"
#include "services/redirection_manager.h"

namespace p2pdrm::net {

struct DeploymentConfig {
  std::uint64_t seed = 1;
  std::size_t key_bits = 512;
  std::size_t partitions = 1;
  geo::SyntheticGeoPlan geo_plan;
  services::UserManagerConfig um;
  services::ChannelManagerConfig cm;
  std::size_t client_binary_size = 16 * 1024;
  /// Sub-streams per channel (peer-division multiplexing). Clients with
  /// substreams > 1 stripe their subscription across multiple parents.
  std::size_t substreams = 1;
  LinkConfig default_link;      // applied to every node unless overridden
  ProcessingModel processing;   // server-side handling delay
  /// Client retransmission policy.
  util::SimTime request_timeout = 3 * util::kSecond;
  int max_retries = 4;
};

class Deployment {
 public:
  explicit Deployment(DeploymentConfig config = {});

  // --- provisioning (instant; control plane is out of band) ---

  bool add_user(const std::string& email, const std::string& password);
  void add_regional_channel(util::ChannelId id, const std::string& name,
                            geo::RegionId region, std::uint32_t partition = 0);
  void add_subscription_channel(util::ChannelId id, const std::string& name,
                                geo::RegionId region, const std::string& package,
                                std::uint32_t partition = 0);

  /// Start the channel's ingest: a ChannelServer plus a root PeerNode on
  /// the network. Key rotations self-schedule in the simulation and push
  /// wrapped keys down the (networked) tree.
  void start_channel_server(util::ChannelId id, services::ChannelServerConfig cfg = {});

  /// Create a client located in `region`; it attaches itself to the network.
  AsyncClient& add_client(const std::string& email, const std::string& password,
                          geo::RegionId region);

  /// Client configuration for callers that manage AsyncClient lifetimes
  /// themselves (churn experiments create and destroy clients constantly).
  AsyncClient::Config make_client_config(const std::string& email,
                                         const std::string& password,
                                         geo::RegionId region);

  /// Make a client's overlay peer discoverable as a parent candidate (and
  /// keep its load fresh in the tracker as children join it).
  void announce(AsyncClient& client);

  /// Session over: detach the client and retire it from the tracker.
  void remove_client(AsyncClient& client);

  /// Produce one content packet at the channel server and push it into the
  /// tree (delivery happens as simulation events).
  void broadcast(util::ChannelId channel, util::BytesView payload);

  // --- simulation control ---

  sim::Simulation& sim() { return sim_; }
  Network& network() { return *network_; }
  void run_until(util::SimTime t) { sim_.run_until(t); }
  /// Drain all scheduled events (careful with self-rescheduling servers:
  /// prefer run_until).
  void run_for(util::SimTime dt) { sim_.run_until(sim_.now() + dt); }

  // --- component access ---

  services::AccountManager& accounts() { return *accounts_; }
  services::ChannelPolicyManager& policy_manager() { return *cpm_; }
  services::ChannelManager& channel_manager(std::uint32_t partition = 0);
  p2p::Tracker& tracker() { return *tracker_; }
  const geo::SyntheticGeo& geo() const { return *geo_; }
  PeerNode* root_node(util::ChannelId channel);

  /// Well-known node ids.
  static constexpr util::NodeId kRedirectionNode = 1;
  static constexpr util::NodeId kUserManagerNode = 2;
  static constexpr util::NodeId kChannelPolicyNode = 3;
  static constexpr util::NodeId kChannelManagerBase = 10;   // + partition
  static constexpr util::NodeId kChannelRootBase = 100;     // + channel id
  static constexpr util::NodeId kClientBase = 1000;

 private:
  struct ChannelSource {
    std::unique_ptr<services::ChannelServer> server;
    std::unique_ptr<PeerNode> root;
  };

  void schedule_rotation(util::ChannelId id);
  void schedule_eviction(util::ChannelId id);

  DeploymentConfig config_;
  crypto::SecureRandom rng_;
  sim::Simulation sim_;
  std::unique_ptr<Network> network_;

  std::unique_ptr<geo::SyntheticGeo> geo_;
  std::unique_ptr<services::AccountManager> accounts_;
  std::shared_ptr<services::UserManagerDomain> um_domain_;
  std::unique_ptr<services::UserManager> um_;
  std::unique_ptr<services::ChannelPolicyManager> cpm_;
  std::vector<std::shared_ptr<services::ChannelManagerPartition>> cm_partitions_;
  std::vector<std::unique_ptr<services::ChannelManager>> cms_;
  std::unique_ptr<p2p::Tracker> tracker_;
  services::RedirectionManager redirection_;
  util::Bytes reference_binary_;

  std::unique_ptr<RedirectionNode> redirection_node_;
  std::unique_ptr<UserManagerNode> um_node_;
  std::unique_ptr<ChannelPolicyNode> cpm_node_;
  std::vector<std::unique_ptr<ChannelManagerNode>> cm_nodes_;
  std::map<util::ChannelId, ChannelSource> sources_;
  std::vector<std::unique_ptr<AsyncClient>> clients_;
  util::NodeId next_client_node_ = kClientBase;
};

}  // namespace p2pdrm::net
