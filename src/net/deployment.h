// Full networked deployment over a swappable transport: every manager is a
// network node, every client is an AsyncClient, all protocol bytes cross
// the lossy wire with latency. The message-passing sibling of
// client::Testbed.
//
// The default backend is the discrete-event simulator (deterministic,
// virtual time). With DeploymentConfig::transport = TransportKind::kThread
// the same deployment runs on real event-loop threads and monotonic-clock
// timers; protocol code is identical, but control-plane calls (add_user,
// add_client, crash/restart, enable_*) must then come from one thread —
// they are the operator's console, not the data plane.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/async_client.h"
#include "net/service_nodes.h"
#include "net/trace_interceptor.h"
#include "obs/timeseries.h"
#include "p2p/tracker.h"
#include "services/account_manager.h"
#include "services/catalog.h"
#include "services/redirection_manager.h"
#include "store/farm_store.h"
#include "transport/transport.h"

namespace p2pdrm::net {

/// Which Transport backend a Deployment schedules on.
enum class TransportKind {
  kSim,     // discrete-event simulation: virtual time, byte-identical runs
  kThread,  // real threads: one event loop per node group, wall-clock time
};

/// Durable farm state (src/store). When enabled, every UM/CM farm instance
/// owns its *own* replica of the mutable domain state (user directory,
/// viewing log) backed by a journaled store, instead of the shared
/// in-memory object: crashes lose the unsynced journal tail, restarts
/// recover via snapshot + replay + anti-entropy from surviving siblings.
struct DurabilityConfig {
  bool enabled = false;
  /// Gossip cadence: live instances fsync and pairwise catch up this often.
  /// Bounds permanent audit loss (async ops staged longer than this never
  /// exist). 0 disables the ticker (tests drive replication by hand).
  util::SimTime replication_interval = 500 * util::kMillisecond;
  /// Write critical ops through before the response leaves the handler:
  /// fresh-issue viewing entries (the single-session witness) and user
  /// provisions are fsynced and eagerly shipped to live siblings, so a
  /// crash immediately after the reply can never dual-admit. Renewal /
  /// audit-only entries stay asynchronous (loss ≤ replication_interval).
  bool sync_fresh_issues = true;
  /// Journal ops between automatic snapshots (store compaction).
  std::uint64_t snapshot_every = 256;
  /// ViewingLog in-memory audit cap (0 = unbounded); evicted entries fold
  /// into exact per-channel aggregates.
  std::size_t viewing_audit_cap = 0;
  /// Simulated recovery cost: restart stays off the network for this long
  /// per replayed/pulled record (models replay I/O). 0 = instant.
  util::SimTime replay_cost_per_record = 0;
};

struct DeploymentConfig {
  std::uint64_t seed = 1;
  std::size_t key_bits = 512;
  std::size_t partitions = 1;
  geo::SyntheticGeoPlan geo_plan;
  services::UserManagerConfig um;
  services::ChannelManagerConfig cm;
  std::size_t client_binary_size = 16 * 1024;
  /// Sub-streams per channel (peer-division multiplexing). Clients with
  /// substreams > 1 stripe their subscription across multiple parents.
  std::size_t substreams = 1;
  LinkConfig default_link;      // applied to every node unless overridden
  ProcessingModel processing;   // server-side handling delay
  /// Client retransmission policy.
  util::SimTime request_timeout = 3 * util::kSecond;
  int max_retries = 4;
  /// Farm sizes: instances per User Manager domain / per Channel Manager
  /// partition. All instances of a farm share the logical manager's state
  /// (§V); individual instances can be crashed and restarted.
  std::size_t um_instances = 1;
  std::size_t cm_instances = 1;
  /// When > 0, a minute-by-minute sweep evicts tracker entries not heard
  /// from in this long (defense against ungraceful peer churn).
  util::SimTime tracker_stale_age = 0;
  /// Tracker admission limits (per-channel cap + per-source registration
  /// rate). Zero values keep the historical unbounded behaviour; abuse
  /// scenarios set these so Sybil floods degrade gracefully.
  p2p::Tracker::Limits tracker_limits;
  /// Forwarded to every client config: operation-level failover and
  /// automatic re-login/re-join (see AsyncClient::Config::resilience).
  bool client_resilience = false;
  /// Server-side overload protection for every service node (redirection,
  /// UM farm, CPM, CM farms): bounded worker queue + admission control.
  /// Disabled by default (workers == 0 keeps the instantaneous model).
  OverloadPolicy overload;
  /// Forwarded to every client config: per-round retry budgets and the
  /// per-destination circuit breaker (0 values = disabled, the default).
  double client_retry_budget = 0;
  double client_retry_budget_refill = 0.5;
  int client_breaker_threshold = 0;
  util::SimTime client_breaker_cooldown = 10 * util::kSecond;
  /// Capture protocol-round spans from construction on (equivalent to
  /// calling enable_tracing() immediately). Metrics are always on.
  bool tracing = false;
  /// Per-instance durable state + farm replication (off = the legacy
  /// shared-state model where crashes lose nothing).
  DurabilityConfig durability;
  /// Transport backend. kSim (default) reproduces the historical engine
  /// byte-for-byte; kThread runs the same deployment on transport_threads
  /// real event loops (see DESIGN.md §10 for what stays deterministic).
  TransportKind transport = TransportKind::kSim;
  std::size_t transport_threads = 4;
  /// Fan-out capacity of each channel's root peer. The historical hardcoded
  /// value was 64; live benches that admit hundreds of sessions into one
  /// channel raise it so JOINs don't exhaust the root.
  std::size_t root_peer_capacity = 64;
};

class Deployment {
 public:
  explicit Deployment(DeploymentConfig config = {});
  /// Shuts the transport down first (live loops stop delivering before any
  /// node or client is destroyed), then tears members down as usual.
  ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  // --- provisioning (instant; control plane is out of band) ---

  bool add_user(const std::string& email, const std::string& password);
  void add_regional_channel(util::ChannelId id, const std::string& name,
                            geo::RegionId region, std::uint32_t partition = 0);
  void add_subscription_channel(util::ChannelId id, const std::string& name,
                                geo::RegionId region, const std::string& package,
                                std::uint32_t partition = 0);

  /// Start the channel's ingest: a ChannelServer plus a root PeerNode on
  /// the network. Key rotations self-schedule in the simulation and push
  /// wrapped keys down the (networked) tree.
  void start_channel_server(util::ChannelId id, services::ChannelServerConfig cfg = {});

  /// Create a client located in `region`; it attaches itself to the network.
  AsyncClient& add_client(const std::string& email, const std::string& password,
                          geo::RegionId region);

  /// Client configuration for callers that manage AsyncClient lifetimes
  /// themselves (churn experiments create and destroy clients constantly).
  AsyncClient::Config make_client_config(const std::string& email,
                                         const std::string& password,
                                         geo::RegionId region);

  /// Make a client's overlay peer discoverable as a parent candidate (and
  /// keep its load fresh in the tracker as children join it).
  void announce(AsyncClient& client);

  /// Session over: detach the client and retire it from the tracker.
  void remove_client(AsyncClient& client);

  /// Produce one content packet at the channel server and push it into the
  /// tree (delivery happens as simulation events).
  void broadcast(util::ChannelId channel, util::BytesView payload);

  // --- fault operations (the chaos plane; used by fault::FaultEngine) ---

  /// Crash a User Manager farm instance: it drops off the network (losing
  /// in-flight work) and the Redirection Manager steers new logins around
  /// it. Instance 0 is the primary created at construction.
  void crash_um_instance(std::size_t instance);
  void restart_um_instance(std::size_t instance);
  bool um_instance_up(std::size_t instance) const;
  std::size_t um_instance_count() const { return um_instances_.size(); }

  /// Crash a Channel Manager instance. If it carried the partition's
  /// advertised address, the CPM's partition info is re-pointed at a
  /// surviving instance — clients discover it on their next channel-list
  /// fetch (that is the client-side failover path).
  void crash_cm_instance(std::uint32_t partition, std::size_t instance);
  void restart_cm_instance(std::uint32_t partition, std::size_t instance);
  bool cm_instance_up(std::uint32_t partition, std::size_t instance) const;
  std::size_t cm_instance_count(std::uint32_t partition) const;

  /// Ungraceful client departure: off the network immediately, nothing
  /// unregistered from the tracker (what a crash or power loss looks like
  /// from the outside — the stale-peer sweep eventually cleans up).
  void crash_client(AsyncClient& client);

  // --- durable-state chaos plane (no-ops unless durability.enabled) ---

  /// Crash leaving a torn partial write of the unsynced journal tail on the
  /// media — the worst-moment variant; replay must reject the torn record.
  void crash_um_unsynced(std::size_t instance);
  void crash_cm_unsynced(std::uint32_t partition, std::size_t instance);
  /// Crash AND destroy the instance's journal + snapshot media entirely;
  /// recovery then has only anti-entropy. Works on an already-down box.
  void wipe_um_state(std::size_t instance);
  void wipe_cm_state(std::uint32_t partition, std::size_t instance);
  /// Change the farm gossip cadence at runtime (0 stops the ticker).
  void set_replication_interval(util::SimTime interval);
  /// Force one replication round immediately (tests and fault verbs).
  void replicate_now();

  bool durable() const { return config_.durability.enabled; }
  const services::UserDirectory* um_directory(std::size_t instance) const;
  const services::ViewingLog* cm_viewing_log(std::uint32_t partition,
                                             std::size_t instance) const;
  store::FarmStore* um_store(std::size_t instance);
  store::FarmStore* cm_store(std::uint32_t partition, std::size_t instance);

  // --- time & scheduling control ---

  /// The simulation under a sim-backed deployment. Aborts on the thread
  /// backend — callers that can run on either must use now()/post()/
  /// run_until instead.
  sim::Simulation& sim();
  util::SimTime now() const { return transport_->now(); }
  /// True on the real-threaded backend (timing is wall-clock, not virtual).
  bool live() const { return transport_->live(); }
  transport::Transport& transport() { return *transport_; }
  /// Run `fn` on the control group's loop (group 0) after `delay` — the
  /// scheduling primitive for deployment-level chaos/ops tasks that works
  /// on both backends.
  void post(util::SimTime delay, transport::Task fn) {
    transport_->post(0, delay, std::move(fn));
  }
  Network& network() { return *network_; }

  // --- observability ---

  /// Always-on metrics: the network, tracker, and every client feed this.
  obs::Registry& registry() { return registry_; }
  const obs::Registry& registry() const { return registry_; }
  /// Span log (empty until enable_tracing).
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }
  /// Start capturing spans: installs the trace interceptor on the network
  /// and hands the tracer to every node and client, current and future.
  /// Idempotent.
  void enable_tracing();
  bool tracing_enabled() const { return tracing_; }
  /// Periodic observability sweep on the simulation clock: every `interval`
  /// the SLO monitor ticks (closing a load/latency correlation bucket with
  /// the live-client count as the load signal) and the time-series engine
  /// scrapes the registry. Also feeds every client's successful rounds into
  /// `slo`, current and future. Either pointer may be null; both must
  /// outlive the deployment. Idempotent (later calls swap the sinks).
  void enable_scraping(obs::TimeSeries* timeseries, obs::SloMonitor* slo,
                       util::SimTime interval = 10 * util::kSecond);
  /// Advance to transport time t: drains events up to t on the sim backend,
  /// sleeps until the monotonic clock passes t on the thread backend.
  void run_until(util::SimTime t) { transport_->run_until(t); }
  void run_for(util::SimTime dt) { transport_->run_until(now() + dt); }

  // --- component access ---

  services::AccountManager& accounts() { return *accounts_; }
  services::ChannelPolicyManager& policy_manager() { return *cpm_; }
  services::ChannelManager& channel_manager(std::uint32_t partition = 0);
  p2p::Tracker& tracker() { return *tracker_; }
  const geo::SyntheticGeo& geo() const { return *geo_; }
  PeerNode* root_node(util::ChannelId channel);
  services::RedirectionManager& redirection() { return redirection_; }
  const services::UserManagerDomain& um_domain() const { return *um_domain_; }
  const services::ChannelManagerPartition& cm_partition(std::uint32_t p) const {
    return *cm_partitions_.at(p);
  }
  std::size_t partition_count() const { return cm_partitions_.size(); }
  /// Clients owned by the deployment, departed/crashed ones included
  /// (remove_client is the only thing that drops one) — report input.
  const std::vector<std::unique_ptr<AsyncClient>>& clients() const {
    return clients_;
  }

  /// Well-known node ids.
  static constexpr util::NodeId kRedirectionNode = 1;
  static constexpr util::NodeId kUserManagerNode = 2;
  static constexpr util::NodeId kChannelPolicyNode = 3;
  static constexpr util::NodeId kChannelManagerBase = 10;   // + partition
  static constexpr util::NodeId kChannelRootBase = 100;     // + channel id
  /// Extra farm instances (instance >= 1; instance 0 keeps the well-known
  /// ids above). Keep channel ids below ~400 when using farms.
  static constexpr util::NodeId kUmInstanceBase = 500;      // + instance
  static constexpr util::NodeId kCmInstanceBase = 520;      // + partition*16 + instance
  static constexpr util::NodeId kClientBase = 1000;

 private:
  struct ChannelSource {
    std::unique_ptr<services::ChannelServer> server;
    std::unique_ptr<PeerNode> root;
    std::uint32_t partition = 0;
    /// Epoch request id whose rotation span the root currently has bound
    /// (released when the next rotation rebinds — hop-fate callbacks fire
    /// at arrival time, so the binding must outlive the announcement).
    std::uint64_t bound_epoch = 0;
  };
  struct UmInstance {
    std::unique_ptr<services::UserManager> um;
    std::unique_ptr<UserManagerNode> node;
    util::NodeId id = util::kInvalidNode;
    util::NetAddr addr;
    bool up = true;
    // Durable mode only: this instance's replica of the user DB + its store.
    std::unique_ptr<services::UserDirectory> dir;
    std::unique_ptr<store::FarmStore> st;
    util::SimTime last_sync = 0;
  };
  struct CmInstance {
    std::unique_ptr<services::ChannelManager> cm;
    std::unique_ptr<ChannelManagerNode> node;
    util::NodeId id = util::kInvalidNode;
    util::NetAddr addr;
    bool up = true;
    // Durable mode only: this instance's replica of the viewing log + store.
    std::unique_ptr<services::ViewingLog> log;
    std::unique_ptr<store::FarmStore> st;
    util::SimTime last_sync = 0;
  };

  void schedule_rotation(util::ChannelId id);
  void schedule_eviction(util::ChannelId id);
  void schedule_stale_sweep();
  void schedule_scrape();
  /// Point the CPM's partition info at the first live instance.
  void readvertise_partition(std::uint32_t partition);

  // Durable-state internals.
  void init_durable_state();
  void provision_user(const services::UserProvisioning& p);
  void schedule_replication();
  void replication_tick();
  void crash_um_impl(std::size_t instance, std::size_t torn_bytes, bool wipe_media);
  void crash_cm_impl(std::uint32_t partition, std::size_t instance,
                     std::size_t torn_bytes, bool wipe_media);

  DeploymentConfig config_;
  crypto::SecureRandom rng_;
  /// Always constructed (cheap); the transport only drives it on kSim.
  sim::Simulation sim_;
  /// The scheduling backend. Declared before everything that posts to it
  /// and destroyed after; the destructor shuts it down first.
  std::unique_ptr<transport::Transport> transport_;
  /// Declared before network_ and the nodes/clients: they all hold pointers
  /// into the registry/tracer, so these must be destroyed last.
  obs::Registry registry_;
  obs::Tracer tracer_;
  std::unique_ptr<TraceInterceptor> trace_interceptor_;
  bool tracing_ = false;
  obs::TimeSeries* timeseries_ = nullptr;
  obs::SloMonitor* slo_ = nullptr;
  util::SimTime scrape_interval_ = 10 * util::kSecond;
  bool scraping_ = false;
  /// Rotation epoch ids live far above client request-id counters: client
  /// nodes double as relay peers, and both share the tracer's
  /// (actor, request_id) binding keyspace. Atomic: each channel's rotation
  /// task runs on its root's loop.
  std::atomic<std::uint64_t> next_epoch_{0};
  std::unique_ptr<Network> network_;

  std::unique_ptr<geo::SyntheticGeo> geo_;
  std::unique_ptr<services::AccountManager> accounts_;
  std::shared_ptr<services::UserManagerDomain> um_domain_;
  std::unique_ptr<services::ChannelPolicyManager> cpm_;
  std::vector<std::shared_ptr<services::ChannelManagerPartition>> cm_partitions_;
  std::unique_ptr<p2p::Tracker> tracker_;
  services::RedirectionManager redirection_;
  util::Bytes reference_binary_;

  std::unique_ptr<RedirectionNode> redirection_node_;
  std::unique_ptr<ChannelPolicyNode> cpm_node_;
  std::vector<UmInstance> um_instances_;
  std::vector<std::vector<CmInstance>> cm_instances_;  // [partition][instance]
  util::SimTime replication_interval_ = 0;
  bool replication_armed_ = false;
  std::map<util::ChannelId, ChannelSource> sources_;
  std::vector<std::unique_ptr<AsyncClient>> clients_;
  util::NodeId next_client_node_ = kClientBase;
};

}  // namespace p2pdrm::net
