#include "net/envelope.h"

namespace p2pdrm::net {

std::string_view to_string(MsgKind kind) {
  switch (kind) {
    case MsgKind::kRedirectRequest: return "redirect-req";
    case MsgKind::kRedirectResponse: return "redirect-resp";
    case MsgKind::kLogin1Request: return "login1-req";
    case MsgKind::kLogin1Response: return "login1-resp";
    case MsgKind::kLogin2Request: return "login2-req";
    case MsgKind::kLogin2Response: return "login2-resp";
    case MsgKind::kChannelListRequest: return "channel-list-req";
    case MsgKind::kChannelListResponse: return "channel-list-resp";
    case MsgKind::kSwitch1Request: return "switch1-req";
    case MsgKind::kSwitch1Response: return "switch1-resp";
    case MsgKind::kSwitch2Request: return "switch2-req";
    case MsgKind::kSwitch2Response: return "switch2-resp";
    case MsgKind::kJoinRequest: return "join-req";
    case MsgKind::kJoinResponse: return "join-resp";
    case MsgKind::kRenewalPresent: return "renewal-present";
    case MsgKind::kRenewalAck: return "renewal-ack";
    case MsgKind::kKeyBlob: return "key-blob";
    case MsgKind::kContent: return "content";
    case MsgKind::kBusy: return "busy";
  }
  return "?";
}

util::Bytes BusyPayload::encode() const {
  util::WireWriter w;
  w.i64(retry_after);
  w.u32(queue_depth);
  return w.take();
}

BusyPayload BusyPayload::decode(util::BytesView data) {
  util::WireReader r(data);
  BusyPayload p;
  p.retry_after = r.i64();
  p.queue_depth = r.u32();
  if (!r.at_end()) throw util::WireError("BusyPayload: trailing bytes");
  if (p.retry_after < 0 || p.retry_after > kMaxRetryAfter) {
    throw util::WireError("BusyPayload: retry-after out of range");
  }
  return p;
}

util::Bytes Envelope::encode() const {
  util::WireWriter w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(request_id);
  w.bytes(payload);
  return w.take();
}

std::optional<Envelope> Envelope::decode(util::BytesView data) {
  try {
    util::WireReader r(data);
    Envelope e;
    const std::uint8_t raw = r.u8();
    if (raw < 1 || raw > static_cast<std::uint8_t>(MsgKind::kBusy)) {
      return std::nullopt;
    }
    e.kind = static_cast<MsgKind>(raw);
    e.request_id = r.u64();
    e.payload = r.bytes();
    if (!r.at_end()) return std::nullopt;
    return e;
  } catch (const util::WireError&) {
    return std::nullopt;
  }
}

}  // namespace p2pdrm::net
