#include "net/deployment.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "services/durable_ops.h"
#include "transport/sim_transport.h"
#include "transport/thread_transport.h"

namespace p2pdrm::net {

Deployment::Deployment(DeploymentConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.um_instances == 0) config_.um_instances = 1;
  if (config_.cm_instances == 0) config_.cm_instances = 1;

  if (config_.transport == TransportKind::kThread) {
    transport::ThreadTransport::Config tc;
    tc.loops = config_.transport_threads;
    transport_ = std::make_unique<transport::ThreadTransport>(tc);
  } else {
    transport_ = std::make_unique<transport::SimTransport>(sim_);
  }
  network_ = std::make_unique<Network>(*transport_, config_.default_link,
                                       rng_.fork());
  network_->bind_registry(&registry_);
  geo_ = std::make_unique<geo::SyntheticGeo>(rng_, config_.geo_plan);

  um_domain_ = std::make_shared<services::UserManagerDomain>(
      config_.um, crypto::generate_rsa_keypair(rng_, config_.key_bits),
      rng_.bytes(32));
  reference_binary_ = rng_.bytes(config_.client_binary_size);
  um_domain_->reference_binaries[config_.um.minimum_client_version] = reference_binary_;

  // The User Manager farm: every instance is a stateless front to the same
  // shared domain state (§V) — that is what makes crash/restart survivable.
  for (std::size_t i = 0; i < config_.um_instances; ++i) {
    UmInstance inst;
    inst.um = std::make_unique<services::UserManager>(um_domain_, &geo_->db(),
                                                      rng_.fork());
    inst.id = i == 0 ? kUserManagerNode
                     : kUmInstanceBase + static_cast<util::NodeId>(i);
    inst.addr = i == 0 ? util::parse_netaddr("10.254.0.2")
                       : util::NetAddr{0x0afe0200u + static_cast<std::uint32_t>(i)};
    um_instances_.push_back(std::move(inst));
  }
  services::UserManager* um0 = um_instances_[0].um.get();

  accounts_ = std::make_unique<services::AccountManager>(
      [this](const services::UserProvisioning& p) { provision_user(p); });

  cpm_ = std::make_unique<services::ChannelPolicyManager>(um_domain_->keys.pub);
  cpm_->add_attribute_list_sink(
      [um0](const core::AttributeSet& list) { um0->update_channel_attributes(list); });

  tracker_ = std::make_unique<p2p::Tracker>(rng_.fork());
  tracker_->set_limits(config_.tracker_limits);
  tracker_->bind_registry(&registry_);

  // Attach the backend to well-known addresses on the network.
  const util::NetAddr redirection_addr = util::parse_netaddr("10.254.0.1");
  const util::NetAddr cpm_addr = util::parse_netaddr("10.254.0.3");

  redirection_node_ = std::make_unique<RedirectionNode>(
      redirection_, *network_, kRedirectionNode, config_.processing);
  redirection_node_->set_registry(&registry_);
  redirection_node_->set_overload_policy(config_.overload);
  network_->attach(kRedirectionNode, redirection_addr, redirection_node_.get());

  for (UmInstance& inst : um_instances_) {
    inst.node = std::make_unique<UserManagerNode>(*inst.um, *network_, inst.id,
                                                  config_.processing);
    inst.node->set_registry(&registry_);
    inst.node->set_overload_policy(config_.overload);
    network_->attach(inst.id, inst.addr, inst.node.get());
  }

  cpm_node_ = std::make_unique<ChannelPolicyNode>(*cpm_, *network_, kChannelPolicyNode,
                                                  config_.processing);
  cpm_node_->set_registry(&registry_);
  cpm_node_->set_overload_policy(config_.overload);
  network_->attach(kChannelPolicyNode, cpm_addr, cpm_node_.get());

  for (std::size_t p = 0; p < config_.partitions; ++p) {
    services::ChannelManagerConfig cm_cfg = config_.cm;
    cm_cfg.partition = static_cast<std::uint32_t>(p);
    auto partition = std::make_shared<services::ChannelManagerPartition>(
        cm_cfg, crypto::generate_rsa_keypair(rng_, config_.key_bits),
        um_domain_->keys.pub, rng_.bytes(32));
    cm_partitions_.push_back(partition);

    // The Channel Manager farm for this partition. The channel list lives
    // in the shared partition state, so one sink (through instance 0, which
    // exists even when crashed — crashing only detaches the node) is enough.
    cm_instances_.emplace_back();
    for (std::size_t i = 0; i < config_.cm_instances; ++i) {
      CmInstance inst;
      inst.cm = std::make_unique<services::ChannelManager>(partition, tracker_.get(),
                                                           rng_.fork());
      inst.id = i == 0 ? kChannelManagerBase + static_cast<util::NodeId>(p)
                       : kCmInstanceBase + static_cast<util::NodeId>(p * 16 + i);
      inst.addr = i == 0
          ? util::NetAddr{0x0afe0100u + static_cast<std::uint32_t>(p)}
          : util::NetAddr{0x0afe0300u + static_cast<std::uint32_t>(p * 16 + i)};
      inst.node = std::make_unique<ChannelManagerNode>(*inst.cm, *network_, inst.id,
                                                       config_.processing);
      inst.node->set_registry(&registry_);
      inst.node->set_overload_policy(config_.overload);
      network_->attach(inst.id, inst.addr, inst.node.get());
      cm_instances_.back().push_back(std::move(inst));
    }
    services::ChannelManager* cm0 = cm_instances_.back()[0].cm.get();
    cpm_->add_channel_list_sink(
        [cm0](const std::vector<core::ChannelRecord>& list) {
          cm0->update_channel_list(list);
        });

    readvertise_partition(static_cast<std::uint32_t>(p));
  }

  for (const UmInstance& inst : um_instances_) {
    redirection_.register_domain(
        config_.um.domain,
        services::ManagerCoordinates{inst.addr, um_domain_->keys.pub.encode()});
  }
  redirection_.set_channel_policy_manager(services::ManagerCoordinates{cpm_addr, {}});

  if (config_.durability.enabled) {
    init_durable_state();
    replication_interval_ = config_.durability.replication_interval;
    schedule_replication();
  }

  if (config_.tracker_stale_age > 0) schedule_stale_sweep();
  if (config_.tracing) enable_tracing();
}

Deployment::~Deployment() {
  // Stop the loops before any member is torn down: a live delivery or timer
  // must never run against a half-destroyed node or client.
  transport_->shutdown();
}

sim::Simulation& Deployment::sim() {
  if (config_.transport != TransportKind::kSim) {
    std::fprintf(stderr,
                 "Deployment::sim() called on a live transport backend; "
                 "use now()/post()/run_until instead\n");
    std::abort();
  }
  return sim_;
}

void Deployment::init_durable_state() {
  store::FarmStore::Config sc;
  sc.snapshot_every = config_.durability.snapshot_every;

  for (std::size_t i = 0; i < um_instances_.size(); ++i) {
    UmInstance& inst = um_instances_[i];
    inst.dir = std::make_unique<services::UserDirectory>();
    inst.st = std::make_unique<store::FarmStore>(
        1000 + static_cast<std::uint32_t>(i), sc);
    inst.st->bind_registry(&registry_);
    inst.um->use_local_directory(inst.dir.get());
    services::UserManager* um = inst.um.get();
    services::UserDirectory* dir = inst.dir.get();
    inst.st->set_state_machine(
        [um](util::BytesView payload) {
          um->apply_provision(services::decode_user_record(payload));
        },
        [dir] { return services::encode_user_directory(*dir); },
        [dir](util::BytesView state) {
          *dir = state.empty() ? services::UserDirectory{}
                               : services::decode_user_directory(state);
        });
  }

  for (std::size_t p = 0; p < cm_instances_.size(); ++p) {
    for (std::size_t i = 0; i < cm_instances_[p].size(); ++i) {
      CmInstance& inst = cm_instances_[p][i];
      inst.log = std::make_unique<services::ViewingLog>();
      inst.log->set_audit_cap(config_.durability.viewing_audit_cap);
      inst.st = std::make_unique<store::FarmStore>(
          2000 + static_cast<std::uint32_t>(p * 16 + i), sc);
      inst.st->bind_registry(&registry_);
      inst.cm->use_local_log(inst.log.get());
      services::ViewingLog* log = inst.log.get();
      const std::size_t cap = config_.durability.viewing_audit_cap;
      inst.st->set_state_machine(
          [log](util::BytesView payload) {
            log->record(services::decode_viewing_entry(payload));
          },
          [log] { return log->encode(); },
          [log, cap](util::BytesView state) {
            *log = state.empty() ? services::ViewingLog()
                                 : services::ViewingLog::decode(state);
            log->set_audit_cap(cap);
          });
      // Every viewing entry this instance writes is journaled; fresh issues
      // (the single-session witness) are additionally fsynced and shipped
      // to live siblings before the Switch2 response leaves the handler, so
      // a crash immediately after the reply cannot forget the admission.
      const std::uint32_t part = static_cast<std::uint32_t>(p);
      inst.cm->set_viewing_sink(
          [this, part, i](const services::ViewingLog::Entry& entry) {
            CmInstance& self = cm_instances_[part][i];
            const store::ReplicatedOp op =
                self.st->submit(services::encode_viewing_entry(entry));
            if (entry.renewal || !config_.durability.sync_fresh_issues) return;
            self.st->sync();
            self.last_sync = now();
            for (CmInstance& other : cm_instances_[part]) {
              if (&other == &self || !other.up) continue;
              if (other.st->ingest(op) == store::FarmStore::IngestResult::kGap) {
                other.st->catch_up_from(*self.st);
              }
              other.st->sync();
              other.last_sync = now();
            }
          });
    }
  }
}

void Deployment::provision_user(const services::UserProvisioning& p) {
  if (!config_.durability.enabled) {
    um_instances_[0].um->provision(p);
    return;
  }
  // Control-plane write lands on the first live instance and — like fresh
  // issues — is written through: provisioning loss would strand an account.
  UmInstance* primary = nullptr;
  for (UmInstance& inst : um_instances_) {
    if (inst.up) { primary = &inst; break; }
  }
  if (primary == nullptr) primary = &um_instances_[0];
  const services::UserRecord& rec = primary->um->provision(p);
  const store::ReplicatedOp op =
      primary->st->submit(services::encode_user_record(rec));
  if (!config_.durability.sync_fresh_issues) return;
  primary->st->sync();
  primary->last_sync = now();
  for (UmInstance& other : um_instances_) {
    if (&other == primary || !other.up) continue;
    if (other.st->ingest(op) == store::FarmStore::IngestResult::kGap) {
      other.st->catch_up_from(*primary->st);
    }
    other.st->sync();
    other.last_sync = now();
  }
}

void Deployment::schedule_replication() {
  if (!config_.durability.enabled || replication_interval_ <= 0) {
    replication_armed_ = false;
    return;
  }
  replication_armed_ = true;
  post(replication_interval_, [this] {
    if (replication_interval_ <= 0) {
      replication_armed_ = false;
      return;
    }
    replication_tick();
    schedule_replication();
  });
}

void Deployment::replication_tick() {
  const util::SimTime t = now();
  for (UmInstance& dst : um_instances_) {
    if (!dst.up) continue;
    for (UmInstance& src : um_instances_) {
      if (&src == &dst || !src.up) continue;
      dst.st->catch_up_from(*src.st);
    }
    dst.st->sync();
    dst.last_sync = t;
  }
  for (std::vector<CmInstance>& farm : cm_instances_) {
    for (CmInstance& dst : farm) {
      if (!dst.up) continue;
      for (CmInstance& src : farm) {
        if (&src == &dst || !src.up) continue;
        dst.st->catch_up_from(*src.st);
      }
      dst.st->sync();
      dst.last_sync = t;
    }
  }
  registry_.counter("store.replication.rounds").inc();
}

void Deployment::set_replication_interval(util::SimTime interval) {
  replication_interval_ = interval;
  registry_.gauge("store.replication.interval_us").set(interval);
  if (interval > 0 && !replication_armed_) schedule_replication();
}

void Deployment::replicate_now() {
  if (config_.durability.enabled) replication_tick();
}

void Deployment::enable_tracing() {
  if (tracing_) return;
  tracing_ = true;
  trace_interceptor_ = std::make_unique<TraceInterceptor>(tracer_);
  network_->add_interceptor(trace_interceptor_.get());
  redirection_node_->set_tracer(&tracer_);
  cpm_node_->set_tracer(&tracer_);
  for (UmInstance& inst : um_instances_) inst.node->set_tracer(&tracer_);
  for (std::vector<CmInstance>& farm : cm_instances_) {
    for (CmInstance& inst : farm) inst.node->set_tracer(&tracer_);
  }
  for (auto& [id, source] : sources_) source.root->set_tracer(&tracer_);
  for (const std::unique_ptr<AsyncClient>& client : clients_) {
    client->bind_observability(&registry_, &tracer_, slo_);
  }
}

void Deployment::enable_scraping(obs::TimeSeries* timeseries, obs::SloMonitor* slo,
                                 util::SimTime interval) {
  timeseries_ = timeseries;
  slo_ = slo;
  if (interval > 0) scrape_interval_ = interval;
  for (const std::unique_ptr<AsyncClient>& client : clients_) {
    client->bind_observability(&registry_, tracing_ ? &tracer_ : nullptr, slo_);
  }
  if (!scraping_) {
    scraping_ = true;
    schedule_scrape();
  }
}

void Deployment::schedule_scrape() {
  post(scrape_interval_, [this] {
    std::size_t live = 0;
    for (const std::unique_ptr<AsyncClient>& client : clients_) {
      if (!client->departed()) ++live;
    }
    const util::SimTime t = now();
    if (slo_ != nullptr) slo_->tick(t, static_cast<double>(live));
    if (timeseries_ != nullptr) {
      // On the live backend, fold the event-loop telemetry into the same
      // registry the scrape reads — loop utilization and scheduling
      // latency land in the time series next to the protocol metrics.
      // (export_into is idempotent, and the loop locks it takes are free
      // here: this task runs with its own loop's lock released.)
      if (auto* threaded =
              dynamic_cast<transport::ThreadTransport*>(transport_.get())) {
        threaded->export_into(registry_);
      }
      timeseries_->record("load.clients", t, static_cast<double>(live));
      timeseries_->scrape(registry_, t);
    }
    schedule_scrape();
  });
}

void Deployment::readvertise_partition(std::uint32_t partition) {
  const std::vector<CmInstance>& farm = cm_instances_.at(partition);
  const CmInstance* live = nullptr;
  for (const CmInstance& inst : farm) {
    if (inst.up) { live = &inst; break; }
  }
  // Whole farm down: keep the stale advertisement; clients time out and
  // their failover loop refetches once an instance comes back.
  if (live == nullptr) return;
  core::PartitionInfo info;
  info.partition = partition;
  info.manager_addr = live->addr;
  info.manager_public_key = cm_partitions_[partition]->keys.pub.encode();
  cpm_->set_partition_info(info);
}

services::ChannelManager& Deployment::channel_manager(std::uint32_t partition) {
  if (partition >= cm_instances_.size()) throw std::out_of_range("Deployment: partition");
  return *cm_instances_[partition][0].cm;
}

bool Deployment::add_user(const std::string& email, const std::string& password) {
  if (!accounts_->create_account(email, password, now())) return false;
  redirection_.assign_user(email, config_.um.domain);
  return true;
}

void Deployment::add_regional_channel(util::ChannelId id, const std::string& name,
                                      geo::RegionId region, std::uint32_t partition) {
  cpm_->add_channel(services::make_regional_channel(id, name, region, partition),
                    now());
}

void Deployment::add_subscription_channel(util::ChannelId id, const std::string& name,
                                          geo::RegionId region,
                                          const std::string& package,
                                          std::uint32_t partition) {
  cpm_->add_channel(
      services::make_subscription_channel(id, name, region, package, partition),
      now());
}

void Deployment::start_channel_server(util::ChannelId id,
                                      services::ChannelServerConfig cfg) {
  cfg.channel = id;
  const core::ChannelRecord* record = cpm_->find_channel(id);
  if (record == nullptr) throw std::invalid_argument("Deployment: unknown channel");

  ChannelSource source;
  source.server = std::make_unique<services::ChannelServer>(cfg, rng_.fork(), now());
  source.partition = record->partition;

  p2p::PeerConfig pc;
  pc.node = kChannelRootBase + id;
  pc.addr = util::NetAddr{0x0ac00000u + id};
  pc.channel = id;
  pc.capacity = config_.root_peer_capacity;
  pc.substreams = config_.substreams;
  source.root = std::make_unique<PeerNode>(
      std::make_unique<p2p::Peer>(
          pc, crypto::generate_rsa_keypair(rng_, config_.key_bits),
          cm_partitions_[record->partition]->keys.pub, rng_.fork()),
      *network_, config_.processing);
  source.root->peer().install_key(source.server->latest_key());
  source.root->set_join_observer(
      [this, id, node = pc.node](util::NodeId, std::size_t children) {
        tracker_->update_load(id, node, children, now());
      });
  if (tracing_) source.root->set_tracer(&tracer_);
  source.root->set_registry(&registry_);
  network_->attach(pc.node, pc.addr, source.root.get());
  tracker_->register_peer(id, core::PeerInfo{pc.node, pc.addr}, pc.capacity,
                          now());

  sources_.insert_or_assign(id, std::move(source));
  schedule_rotation(id);
  schedule_eviction(id);
}

void Deployment::schedule_eviction(util::ChannelId id) {
  // Peers sever children whose Channel Tickets lapsed unrenewed (§IV-D);
  // the root sweeps once a minute, on the root's own loop.
  network_->post(kChannelRootBase + id, util::kMinute, [this, id] {
    const auto source = sources_.find(id);
    if (source == sources_.end()) return;
    if (!source->second.root->peer().evict_expired(now()).empty()) {
      tracker_->update_load(id, source->second.root->id(),
                            source->second.root->peer().child_count(), now());
    }
    schedule_eviction(id);
  });
}

void Deployment::schedule_stale_sweep() {
  // The keep-alive half of ungraceful-churn defense: once a minute, every
  // peer still on the network refreshes its tracker entry, then everything
  // not heard from within the stale age is evicted. A crashed client never
  // refreshes, so the tracker stops advertising it within one age window.
  post(util::kMinute, [this] {
    for (const auto& [id, source] : sources_) {
      tracker_->update_load(id, source.root->id(),
                            source.root->peer().child_count(), now());
    }
    for (const std::unique_ptr<AsyncClient>& client : clients_) {
      if (client->departed() || !client->channel_ticket()) continue;
      if (client->peer_node() == nullptr) continue;
      tracker_->update_load(client->channel_ticket()->ticket.channel_id,
                            client->config().node,
                            client->peer_node()->peer().child_count(), now());
    }
    if (now() > config_.tracker_stale_age) {
      tracker_->evict_stale(now() - config_.tracker_stale_age);
    }
    schedule_stale_sweep();
  });
}

void Deployment::schedule_rotation(util::ChannelId id) {
  const auto it = sources_.find(id);
  if (it == sources_.end()) return;
  const util::SimTime interval = it->second.server->config().rekey_interval;
  // Rotation advances the channel server and fans keys out through the
  // root: it runs on the root's loop, like every other touch of that peer.
  network_->post(kChannelRootBase + id, interval, [this, id] {
    const auto it2 = sources_.find(id);
    if (it2 == sources_.end()) return;
    ChannelSource& source = it2->second;
    for (const core::ContentKey& key : source.server->advance(now())) {
      registry_.counter("keys.rotations_issued").inc();
      cm_partitions_[source.partition]->key_stats.record_rotation_issued();
      if (!tracing_) {
        source.root->announce_key(key);
        continue;
      }
      // One root span per rotation; the epoch id stamps every blob of the
      // fan-out so relay spans and key-blob hops hang under it.
      const std::uint64_t epoch_id = (1ull << 48) + ++next_epoch_;
      const obs::SpanId span = tracer_.begin_span("server", "KEY_ROTATION",
                                                  source.root->id(), now());
      tracer_.tag(span, "channel", std::to_string(id));
      tracer_.tag(span, "serial", std::to_string(key.serial));
      tracer_.tag(span, "activation", std::to_string(key.activation));
      if (source.bound_epoch != 0) {
        tracer_.unbind_request(source.root->id(), source.bound_epoch);
      }
      tracer_.bind_request(source.root->id(), epoch_id, span);
      source.bound_epoch = epoch_id;
      source.root->announce_key(key, epoch_id);
      tracer_.end_span(span, now());
    }
    schedule_rotation(id);
  });
}

void Deployment::crash_um_impl(std::size_t instance, std::size_t torn_bytes,
                               bool wipe_media) {
  UmInstance& inst = um_instances_.at(instance);
  if (inst.up) {
    if (network_->attached(inst.id)) network_->detach(inst.id);
    inst.up = false;
    redirection_.set_instance_health(config_.um.domain, inst.addr, false);
    if (config_.durability.enabled) {
      const std::uint64_t lost = inst.st->unsynced_ops();
      if (lost > 0) {
        registry_.counter("store.lost_records").inc(lost);
        registry_.gauge("store.audit.max_loss_window_us")
            .set_max(now() - inst.last_sync);
      }
      inst.st->crash(torn_bytes);
      *inst.dir = services::UserDirectory{};  // RAM is gone
    }
  }
  if (wipe_media && config_.durability.enabled) inst.st->wipe();
}

void Deployment::crash_um_instance(std::size_t instance) {
  crash_um_impl(instance, 0, false);
}

void Deployment::crash_um_unsynced(std::size_t instance) {
  // Tear the crash mid-write: half the staged tail reaches the media as a
  // partial record; replay must stop at the last whole one.
  const UmInstance& inst = um_instances_.at(instance);
  const std::size_t torn =
      config_.durability.enabled ? inst.st->journal().staged_bytes() / 2 : 0;
  crash_um_impl(instance, torn, false);
}

void Deployment::wipe_um_state(std::size_t instance) {
  crash_um_impl(instance, 0, true);
}

void Deployment::restart_um_instance(std::size_t instance) {
  UmInstance& inst = um_instances_.at(instance);
  if (inst.up) return;
  inst.up = true;

  if (!config_.durability.enabled) {
    network_->attach(inst.id, inst.addr, inst.node.get());
    redirection_.set_instance_health(config_.um.domain, inst.addr, true);
    return;
  }

  // Local recovery: snapshot restore + journal replay, then anti-entropy
  // from live siblings (also pulls our own unsynced-but-shipped ops home,
  // which keeps the local sequence counter from reusing numbers).
  const std::size_t replayed = inst.st->recover();
  std::size_t pulled = 0;
  for (UmInstance& other : um_instances_) {
    if (&other == &inst || !other.up) continue;
    pulled += inst.st->catch_up_from(*other.st);
  }
  inst.st->sync();
  inst.last_sync = now();

  const util::SimTime cost = config_.durability.replay_cost_per_record *
      static_cast<util::SimTime>(replayed + pulled);
  registry_.counter("store.recovery.count").inc();
  registry_.histogram("store.recovery.time_us").record(cost);
  const auto finish = [this, instance] {
    UmInstance& i = um_instances_.at(instance);
    if (!i.up) return;  // crashed again during the replay window
    if (!network_->attached(i.id)) network_->attach(i.id, i.addr, i.node.get());
    redirection_.set_instance_health(config_.um.domain, i.addr, true);
  };
  if (cost > 0) {
    post(cost, finish);
  } else {
    finish();
  }
}

bool Deployment::um_instance_up(std::size_t instance) const {
  return um_instances_.at(instance).up;
}

void Deployment::crash_cm_impl(std::uint32_t partition, std::size_t instance,
                               std::size_t torn_bytes, bool wipe_media) {
  CmInstance& inst = cm_instances_.at(partition).at(instance);
  if (inst.up) {
    if (network_->attached(inst.id)) network_->detach(inst.id);
    inst.up = false;
    readvertise_partition(partition);
    if (config_.durability.enabled) {
      const std::uint64_t lost = inst.st->unsynced_ops();
      if (lost > 0) {
        registry_.counter("store.lost_records").inc(lost);
        registry_.gauge("store.audit.max_loss_window_us")
            .set_max(now() - inst.last_sync);
      }
      inst.st->crash(torn_bytes);
      *inst.log = services::ViewingLog();  // RAM is gone
      inst.log->set_audit_cap(config_.durability.viewing_audit_cap);
    }
  }
  if (wipe_media && config_.durability.enabled) inst.st->wipe();
}

void Deployment::crash_cm_instance(std::uint32_t partition, std::size_t instance) {
  crash_cm_impl(partition, instance, 0, false);
}

void Deployment::crash_cm_unsynced(std::uint32_t partition, std::size_t instance) {
  const CmInstance& inst = cm_instances_.at(partition).at(instance);
  const std::size_t torn =
      config_.durability.enabled ? inst.st->journal().staged_bytes() / 2 : 0;
  crash_cm_impl(partition, instance, torn, false);
}

void Deployment::wipe_cm_state(std::uint32_t partition, std::size_t instance) {
  crash_cm_impl(partition, instance, 0, true);
}

void Deployment::restart_cm_instance(std::uint32_t partition, std::size_t instance) {
  CmInstance& inst = cm_instances_.at(partition).at(instance);
  if (inst.up) return;
  inst.up = true;

  if (!config_.durability.enabled) {
    network_->attach(inst.id, inst.addr, inst.node.get());
    readvertise_partition(partition);
    return;
  }

  const std::size_t replayed = inst.st->recover();
  std::size_t pulled = 0;
  for (CmInstance& other : cm_instances_.at(partition)) {
    if (&other == &inst || !other.up) continue;
    pulled += inst.st->catch_up_from(*other.st);
  }
  inst.st->sync();
  inst.last_sync = now();

  const util::SimTime cost = config_.durability.replay_cost_per_record *
      static_cast<util::SimTime>(replayed + pulled);
  registry_.counter("store.recovery.count").inc();
  registry_.histogram("store.recovery.time_us").record(cost);
  const auto finish = [this, partition, instance] {
    CmInstance& i = cm_instances_.at(partition).at(instance);
    if (!i.up) return;
    if (!network_->attached(i.id)) network_->attach(i.id, i.addr, i.node.get());
    readvertise_partition(partition);
  };
  if (cost > 0) {
    post(cost, finish);
  } else {
    finish();
  }
}

bool Deployment::cm_instance_up(std::uint32_t partition, std::size_t instance) const {
  return cm_instances_.at(partition).at(instance).up;
}

std::size_t Deployment::cm_instance_count(std::uint32_t partition) const {
  return cm_instances_.at(partition).size();
}

void Deployment::crash_client(AsyncClient& client) {
  // Deliberately no tracker unregistration: an ungraceful death looks like
  // silence, and only the stale sweep (or failed joins) reveals it.
  client.leave();
}

AsyncClient::Config Deployment::make_client_config(const std::string& email,
                                                   const std::string& password,
                                                   geo::RegionId region) {
  AsyncClient::Config cc;
  cc.email = email;
  cc.password = password;
  cc.client_version = config_.um.minimum_client_version;
  cc.client_binary = reference_binary_;
  cc.addr = geo_->sample_address(rng_, region);
  cc.node = next_client_node_++;
  cc.key_bits = config_.key_bits;
  cc.substreams = config_.substreams;
  cc.request_timeout = config_.request_timeout;
  cc.max_retries = config_.max_retries;
  cc.resilience = config_.client_resilience;
  cc.retry_budget = config_.client_retry_budget;
  cc.retry_budget_refill_per_second = config_.client_retry_budget_refill;
  cc.breaker_failure_threshold = config_.client_breaker_threshold;
  cc.breaker_cooldown = config_.client_breaker_cooldown;
  cc.redirection_node = kRedirectionNode;
  return cc;
}

AsyncClient& Deployment::add_client(const std::string& email,
                                    const std::string& password,
                                    geo::RegionId region) {
  clients_.push_back(std::make_unique<AsyncClient>(
      make_client_config(email, password, region), *network_, rng_.fork()));
  AsyncClient* client = clients_.back().get();
  client->bind_observability(&registry_, tracing_ ? &tracer_ : nullptr, slo_);
  // Route rotated-epoch installs into the owning partition's key ops so the
  // resilience report can show issued vs delivered and worst staleness.
  client->set_key_delivery_hook(
      [this, client](const core::ContentKey& key, util::SimTime at) {
        std::uint32_t partition = 0;
        if (client->channel_ticket()) {
          if (const core::ChannelRecord* rec = cpm_->find_channel(
                  client->channel_ticket()->ticket.channel_id)) {
            partition = rec->partition;
          }
        }
        services::OpsCounters& ops = cm_partitions_[partition]->key_stats;
        ops.record_epoch_delivered();
        if (at > key.activation) ops.note_key_staleness(at - key.activation);
      });
  return *client;
}

void Deployment::announce(AsyncClient& client) {
  if (client.peer_node() == nullptr || !client.channel_ticket()) return;
  const util::ChannelId channel = client.channel_ticket()->ticket.channel_id;
  const util::NodeId node = client.config().node;
  tracker_->register_peer(channel, core::PeerInfo{node, client.config().addr},
                          client.config().peer_capacity, now());
  client.peer_node()->set_join_observer(
      [this, channel, node](util::NodeId, std::size_t children) {
        tracker_->update_load(channel, node, children, now());
      });
}

void Deployment::remove_client(AsyncClient& client) {
  if (client.channel_ticket()) {
    tracker_->unregister_peer(client.channel_ticket()->ticket.channel_id,
                              client.config().node);
  }
  client.leave();
  std::erase_if(clients_, [&](const std::unique_ptr<AsyncClient>& c) {
    return c.get() == &client;
  });
}

void Deployment::broadcast(util::ChannelId channel, util::BytesView payload) {
  const auto it = sources_.find(channel);
  if (it == sources_.end()) throw std::invalid_argument("Deployment: no channel server");
  const core::ContentPacket packet = it->second.server->produce(payload, now());
  it->second.root->forward_content(packet);
}

PeerNode* Deployment::root_node(util::ChannelId channel) {
  const auto it = sources_.find(channel);
  return it == sources_.end() ? nullptr : it->second.root.get();
}

const services::UserDirectory* Deployment::um_directory(std::size_t instance) const {
  return um_instances_.at(instance).dir.get();
}

const services::ViewingLog* Deployment::cm_viewing_log(std::uint32_t partition,
                                                       std::size_t instance) const {
  return cm_instances_.at(partition).at(instance).log.get();
}

store::FarmStore* Deployment::um_store(std::size_t instance) {
  return um_instances_.at(instance).st.get();
}

store::FarmStore* Deployment::cm_store(std::uint32_t partition,
                                       std::size_t instance) {
  return cm_instances_.at(partition).at(instance).st.get();
}

}  // namespace p2pdrm::net
