// Event-driven client for the simulated network deployment.
//
// Runs the same protocol sequence as client::Client (redirect → LOGIN1/2 →
// channel list → SWITCH1/2 → JOIN → renewals) but asynchronously over the
// lossy datagram network: every request carries a request id, is timed out
// and retransmitted up to a retry budget, and completions are delivered via
// callbacks inside the discrete-event simulation. Peer-side duties (serving
// joins, relaying keys, forwarding content) are delegated to an embedded
// PeerNode, so a fleet of AsyncClients forms a real working overlay.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>

#include "client/client.h"  // Round / LatencySample vocabulary
#include "net/service_nodes.h"
#include "obs/registry.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "p2p/substream.h"

namespace p2pdrm::net {

class AsyncClient final : public Node {
 public:
  struct Config {
    std::string email;
    std::string password;
    std::uint32_t client_version = 1;
    util::Bytes client_binary;
    util::NetAddr addr;
    util::NodeId node = util::kInvalidNode;
    std::size_t peer_capacity = 4;
    std::size_t key_bits = 512;
    /// Peer-division multiplexing: how many sub-streams the channel is
    /// delivered as (1..32; the JOIN mask is 32 bits wide). With k > 1 the
    /// client stripes its subscription across up to k distinct parents
    /// (redundancy against churn and loss, §III).
    std::size_t substreams = 1;
    /// Retransmission policy: every retransmission waits `backoff_factor`×
    /// longer than the previous one (capped at `max_timeout`), stretched by
    /// up to a `jitter` fraction so a fleet of clients recovering from the
    /// same outage does not retry in lockstep.
    util::SimTime request_timeout = 3 * util::kSecond;
    int max_retries = 4;
    double backoff_factor = 2.0;
    double jitter = 0.1;
    util::SimTime max_timeout = 30 * util::kSecond;
    /// Operation-level resilience: when true, failed protocol rounds fail
    /// over to an alternate manager instance (fresh redirect + channel-list
    /// refetch) and a lost session re-logins and re-joins automatically.
    bool resilience = false;
    int max_recovery_attempts = 6;  // per operation; recover_session is unbounded
    util::SimTime recovery_delay = 1 * util::kSecond;  // base, doubles per attempt
    util::SimTime max_recovery_delay = 30 * util::kSecond;
    /// Well-known bootstrap (baked into the client binary, §V).
    util::NodeId redirection_node = util::kInvalidNode;
    /// Per-operation retry budget (token bucket, one bucket per protocol
    /// round). Both timeout retransmissions and BUSY-deferred resends spend
    /// a token; an empty bucket fails the request instead of retrying, so a
    /// saturated server cannot turn the client fleet into a retry storm.
    /// 0 = unlimited (legacy behavior).
    double retry_budget = 0;
    double retry_budget_refill_per_second = 0.5;
    /// How many BUSY responses one request tolerates before giving up.
    int busy_max_defers = 8;
    /// Per-destination circuit breaker: after this many consecutive
    /// timeout exhaustions to one node, requests to it fast-fail for
    /// `breaker_cooldown`, then a single probe decides. 0 = disabled.
    int breaker_failure_threshold = 0;
    util::SimTime breaker_cooldown = 10 * util::kSecond;
  };

  using Callback = std::function<void(core::DrmError)>;

  /// Attaches itself to the network at (config.node, config.addr).
  AsyncClient(Config config, Network& network, crypto::SecureRandom rng);
  ~AsyncClient() override;

  AsyncClient(const AsyncClient&) = delete;
  AsyncClient& operator=(const AsyncClient&) = delete;

  // --- protocol drivers (complete via callback inside the simulation) ---

  void login(Callback done);
  void switch_channel(util::ChannelId channel, Callback done);
  void renew_channel_ticket(Callback done);

  /// Rebuild a lost session from scratch: fresh redirect (so the
  /// Redirection Manager can steer us to a healthy farm instance), full
  /// re-login, then re-switch to the channel we were watching. Retries
  /// itself with capped exponential backoff until it succeeds, the failure
  /// is permanent (bad credentials, access denied...), or the client
  /// departs. A successful recovery counts as one rejoin and records the
  /// outage-to-rejoined latency.
  void recover_session(Callback done);

  /// Self-driving ticket maintenance: after every successful switch or
  /// renewal, schedule the next Channel Ticket renewal `margin` before its
  /// expiry (re-logging in first when the User Ticket is about to lapse).
  /// This is the client behavior that keeps a long viewing session alive
  /// without user interaction (§II).
  void enable_auto_renewal(util::SimTime margin = 2 * util::kMinute);

  /// Player-style churn recovery: if no content arrives for `gap` while
  /// tuned to a channel (the parent died or the subtree starved), re-run
  /// the channel switch to get a fresh ticket and a fresh peer list.
  /// Detects total starvation only: with multi-parent sub-streams, losing
  /// one parent halves the feed without tripping this watchdog (a
  /// production player would track per-sub-stream liveness).
  void enable_starvation_recovery(util::SimTime gap = 10 * util::kSecond);

  /// Session over: detach from the network (peers sever us at ticket
  /// expiry, §IV-D). The object stays inspectable.
  void leave();
  bool departed() const { return departed_; }
  std::uint64_t starvation_recoveries() const { return starvation_recoveries_; }

  // --- resilience accounting (inputs to fault::ResilienceReport) ---

  /// Packet-level retransmissions across all requests.
  std::uint64_t retransmits() const { return retransmits_; }
  /// Requests whose whole retry budget drained without a response.
  std::uint64_t timeout_exhaustions() const { return timeout_exhaustions_; }
  /// BUSY responses received from admission-controlled servers.
  std::uint64_t busy_received() const { return busy_received_; }
  /// Resends scheduled after a BUSY (honoring its retry-after hint).
  std::uint64_t busy_deferred_resends() const { return busy_deferred_resends_; }
  /// Requests failed because the per-round retry budget ran dry.
  std::uint64_t retry_budget_exhaustions() const {
    return retry_budget_exhaustions_;
  }
  /// Requests fast-failed by an open per-destination circuit breaker.
  std::uint64_t breaker_fast_fails() const { return breaker_fast_fails_; }
  /// The breaker guarding `node` (null when none exists yet / disabled).
  const CircuitBreaker* breaker(util::NodeId node) const {
    const auto it = breakers_.find(node);
    return it == breakers_.end() ? nullptr : &it->second;
  }
  /// Operation-level failovers (fresh redirect / channel-list refetch after
  /// a failed round).
  std::uint64_t failovers() const { return failovers_; }
  /// Automatic re-authentications performed by the recovery machinery.
  std::uint64_t relogins() const { return relogins_; }
  /// Completed session recoveries (re-login + re-join).
  std::uint64_t rejoins() const { return rejoins_; }
  /// Latency of each completed recovery, from detection to rejoined.
  const std::vector<util::SimTime>& rejoin_latencies() const {
    return rejoin_latencies_;
  }

  // --- state ---

  bool logged_in() const { return user_ticket_.has_value(); }
  const std::optional<core::SignedUserTicket>& user_ticket() const {
    return user_ticket_;
  }
  const std::optional<core::SignedChannelTicket>& channel_ticket() const {
    return channel_ticket_;
  }
  const std::vector<client::LatencySample>& feedback_log() const { return feedback_; }
  const Config& config() const { return config_; }
  std::optional<util::NodeId> parent() const { return parent_; }

  /// The overlay half (null until the first successful switch).
  PeerNode* peer_node() { return peer_node_.get(); }
  std::uint64_t content_decrypted() const { return content_decrypted_; }
  std::uint64_t content_undecryptable() const { return content_undecryptable_; }
  /// Packets handed to the player in order after sub-stream reassembly.
  std::uint64_t content_in_order() const { return content_in_order_; }
  /// Sub-stream -> parent assignment (null until a striped join succeeds).
  const p2p::SubstreamRouter* router() const { return router_.get(); }

  void on_packet(const Packet& packet) override;

  /// Route this client's telemetry into a registry (per-round latency
  /// histograms "client.round.<NAME>", key-epoch delivery metrics under
  /// "keys.*"), a tracer (request spans with one child span per
  /// transmission attempt), and/or an SLO monitor (fed every successful
  /// round's latency). Any may be null.
  void bind_observability(obs::Registry* registry, obs::Tracer* tracer,
                          obs::SloMonitor* slo = nullptr);

  /// Called whenever this client's overlay peer installs a rotated key
  /// epoch delivered over the fan-out (after the registry metrics update).
  using KeyDeliveryHook =
      std::function<void(const core::ContentKey& key, util::SimTime at)>;
  void set_key_delivery_hook(KeyDeliveryHook hook) {
    key_delivery_hook_ = std::move(hook);
  }

 private:
  struct Pending {
    MsgKind expect;
    util::NodeId to = util::kInvalidNode;
    util::Bytes wire;  // full envelope for retransmission
    int retries_left = 0;
    int busy_defers = 0;        // BUSY responses absorbed so far
    std::uint64_t attempt = 0;  // invalidates stale timeout events
    client::Round round;
    util::SimTime started = 0;
    std::function<void(const Envelope&)> on_response;
    Callback on_fail;
    obs::SpanId span = 0;          // the whole request (all attempts)
    obs::SpanId attempt_span = 0;  // the transmission currently in flight
  };

  /// End the request's spans with the final outcome and drop its binding.
  void close_request_spans(std::uint64_t request_id, Pending& pending, bool ok,
                           const char* outcome);

  void send_request(util::NodeId to, MsgKind kind, util::Bytes payload,
                    MsgKind expect, client::Round round,
                    std::function<void(const Envelope&)> on_response,
                    Callback on_fail);
  void arm_timeout(std::uint64_t request_id);
  /// A kBusy envelope answered one of our pending requests: defer and
  /// resend after its retry-after hint, or fail when the request is out of
  /// defers / the round's retry budget is dry.
  void handle_busy(const Envelope& env);
  /// Spend one retry token for `round`; false = budget dry.
  bool spend_retry_token(client::Round round);
  CircuitBreaker& breaker_for(util::NodeId node);
  void fail_pending(std::uint64_t request_id, Pending pending,
                    const char* outcome, core::DrmError err);
  void record(client::Round round, util::SimTime started, bool success);
  /// Overlay fan-out delivered a rotated key epoch to our embedded peer.
  void on_key_installed(const core::ContentKey& key);

  // login continuation chain
  void start_login1(Callback done);
  void after_login2(const core::Login2Response& resp, util::SimTime started,
                    Callback done);
  void maybe_fetch_channel_list(std::vector<std::string> stale, Callback done);
  void try_join(std::vector<core::PeerInfo> peers, std::size_t index,
                util::SimTime started, Callback done);

  /// Striped (multi-parent) join bookkeeping for substreams > 1.
  struct StripedJoin {
    std::vector<core::PeerInfo> peers;
    std::vector<std::uint32_t> group_masks;  // one join group per parent slot
    std::size_t group = 0;
    std::size_t candidate = 0;
    util::SimTime started = 0;
    std::map<util::NodeId, std::uint32_t> assigned;  // parent -> mask so far
  };
  void join_striped(std::shared_ptr<StripedJoin> state, Callback done);
  void finish_join(util::SimTime started, Callback done);

  std::uint32_t partition_of(util::ChannelId channel) const;
  std::optional<util::NodeId> manager_node(std::uint32_t partition) const;
  void schedule_auto_renewal();
  void arm_starvation_watchdog();

  // resilience machinery
  static bool permanent_failure(core::DrmError err);
  util::SimTime recovery_backoff(int attempt);
  /// Run `op`; on a recoverable failure, fail over (drop cached redirect +
  /// channel list so the next attempt re-resolves both) and retry after a
  /// backoff, up to the recovery budget.
  void run_resilient(std::function<void(Callback)> op, int attempt, Callback done);
  void recover_session_attempt(util::SimTime started, int attempt, Callback done);

  void do_login(Callback done);
  void do_switch_channel(util::ChannelId channel, Callback done);
  void do_renew_channel_ticket(Callback done);

  /// Schedule a simulation event tied to this client's lifetime. Simulation
  /// events cannot be cancelled, so a raw [this] capture would dangle if the
  /// client is destroyed (churn!) before the timer fires; the event is
  /// silently dropped instead.
  void schedule(util::SimTime delay, std::function<void()> action);

  Config config_;
  Network& network_;
  crypto::SecureRandom rng_;
  crypto::RsaKeyPair keys_;

  obs::Registry* registry_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::SloMonitor* slo_ = nullptr;
  obs::LatencyHistogram* round_hist_[5] = {};  // indexed by client::Round
  obs::Counter* keys_delivered_ = nullptr;
  obs::LatencyHistogram* key_margin_hist_ = nullptr;
  obs::Gauge* key_staleness_gauge_ = nullptr;
  KeyDeliveryHook key_delivery_hook_;

  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t next_request_id_ = 1;

  /// One retry budget per protocol round (indexed by client::Round).
  TokenBucket retry_budgets_[5];
  /// One breaker per destination we have sent to (created on first send).
  std::map<util::NodeId, CircuitBreaker> breakers_;

  std::optional<services::RedirectResponse> redirect_;
  std::optional<core::SignedUserTicket> user_ticket_;
  std::optional<core::SignedUserTicket> previous_user_ticket_;
  std::optional<core::SignedChannelTicket> channel_ticket_;
  std::vector<core::ChannelRecord> channels_;
  std::vector<core::PartitionInfo> partitions_;
  std::unique_ptr<PeerNode> peer_node_;
  std::optional<util::NodeId> parent_;
  std::unique_ptr<p2p::SubstreamRouter> router_;
  std::unique_ptr<p2p::SubstreamBuffer> reassembly_;
  std::uint64_t content_in_order_ = 0;
  std::vector<client::LatencySample> feedback_;
  std::uint64_t content_decrypted_ = 0;
  std::uint64_t content_undecryptable_ = 0;

  bool auto_renew_ = false;
  util::SimTime renew_margin_ = 2 * util::kMinute;
  std::uint64_t renew_epoch_ = 0;  // invalidates stale renewal timers
  /// Atomic so a live-bench driver thread can poll departed() while the
  /// client's loop runs; all writes happen on the client's own loop.
  std::atomic<bool> departed_{false};

  bool starvation_recovery_ = false;
  bool watchdog_armed_ = false;
  util::SimTime starvation_gap_ = 10 * util::kSecond;
  util::SimTime last_content_ = 0;
  bool recovering_ = false;
  std::uint64_t starvation_recoveries_ = 0;

  /// Cleared by the destructor; pending timers hold a copy and no-op.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  /// Channel of the last successful switch (what recover_session rejoins).
  util::ChannelId current_channel_ = 0;
  bool session_recovery_active_ = false;  // one recovery loop at a time
  std::uint64_t retransmits_ = 0;
  std::uint64_t timeout_exhaustions_ = 0;
  std::uint64_t busy_received_ = 0;
  std::uint64_t busy_deferred_resends_ = 0;
  std::uint64_t retry_budget_exhaustions_ = 0;
  std::uint64_t breaker_fast_fails_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t relogins_ = 0;
  std::uint64_t rejoins_ = 0;
  std::vector<util::SimTime> rejoin_latencies_;
};

}  // namespace p2pdrm::net
