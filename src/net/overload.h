// Overload protection building blocks for the networked deployment.
//
// Server side: ServiceQueue models a bounded c-server FIFO in front of a
// service node. Requests wait for a free worker instead of being handled
// instantaneously; past a hard queue bound everything is shed, and past a
// softer high-water mark only *sheddable* requests (fresh LOGIN1/LOGIN2 —
// new admissions) are shed while renewals and SWITCH rounds still queue
// (session continuity beats new admissions). Shedding is never silent: the
// node answers with a kBusy envelope carrying a retry-after hint.
//
// Client side: TokenBucket is the per-operation retry budget (BUSY-deferred
// resends spend tokens, so a saturated server cannot convert the client
// fleet into a metastable retry storm), and CircuitBreaker is the
// per-destination closed/open/half-open breaker that fast-fails requests to
// a destination that keeps timing out, probing it once per cooldown.
//
// Everything is deterministic and driven by the simulation clock; none of
// these classes draw randomness.
#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "util/time.h"

namespace p2pdrm::net {

/// Queue/admission parameters for one service node. The defaults keep the
/// legacy behavior exactly: workers == 0 disables the queue entirely
/// (instantaneous admission, fixed ProcessingModel delay), so existing
/// deployments and seeded tests are untouched until a config opts in.
struct OverloadPolicy {
  /// Worker servers draining the queue; 0 = no queue (legacy model).
  std::size_t workers = 0;
  /// Hard bound on waiting requests; at or past it everything is shed.
  /// 0 = unbounded.
  std::size_t queue_capacity = 0;
  /// Soft bound: at or past this many waiting requests, sheddable requests
  /// (fresh logins) are shed while protected ones still queue. 0 = off.
  std::size_t high_water = 0;
  /// Base retry-after hint in BUSY responses; the hint grows with the
  /// backlog so a deeper queue pushes retries further out.
  util::SimTime busy_retry_after = 500 * util::kMillisecond;

  bool enabled() const { return workers > 0; }
};

/// A bounded c-server FIFO queue with priority admission control.
/// Arrivals must be submitted in nondecreasing time order (the simulation
/// event loop guarantees it).
class ServiceQueue {
 public:
  explicit ServiceQueue(OverloadPolicy policy);

  struct Decision {
    bool accepted = true;
    /// Time the request waits for a free worker (0 when one is idle).
    util::SimTime wait = 0;
    /// Retry-after hint, set when !accepted.
    util::SimTime retry_after = 0;
    /// Waiting requests at decision time (diagnostic; rides in the BUSY).
    std::size_t depth = 0;
  };

  /// Admit or shed one request of the given service time. `sheddable`
  /// marks requests that admission control may drop at the high-water mark.
  Decision admit(util::SimTime now, util::SimTime service, bool sheddable);

  /// Requests admitted but not yet in service at `now`.
  std::size_t depth(util::SimTime now) const;

  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t shed() const { return shed_; }
  std::size_t peak_depth() const { return peak_depth_; }
  const OverloadPolicy& policy() const { return policy_; }

 private:
  void prune(util::SimTime now) const;

  OverloadPolicy policy_;
  /// Min-heap of per-worker next-free times.
  std::priority_queue<util::SimTime, std::vector<util::SimTime>,
                      std::greater<util::SimTime>>
      free_at_;
  /// Service-start times of admitted requests, in admission order; entries
  /// <= now have left the queue. mutable: depth() prunes lazily.
  mutable std::deque<util::SimTime> starts_;
  std::uint64_t admitted_ = 0;
  std::uint64_t shed_ = 0;
  std::size_t peak_depth_ = 0;
};

/// Token-bucket retry budget: starts full, refills continuously, and every
/// withdrawal must find a whole token. capacity == 0 disables the budget
/// (every try_take succeeds — the legacy behavior).
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double capacity, double refill_per_second);

  /// Take one token at `now`; false when the budget is exhausted.
  bool try_take(util::SimTime now);
  double tokens(util::SimTime now) const;
  bool unlimited() const { return capacity_ <= 0; }

 private:
  void refill(util::SimTime now);

  double capacity_ = 0;
  double refill_per_second_ = 0;
  double tokens_ = 0;
  util::SimTime updated_ = 0;
};

/// Per-destination circuit breaker. Closed: requests flow, consecutive
/// failures are counted. At `failure_threshold` the breaker opens and
/// requests fast-fail for `cooldown`; then it half-opens and lets exactly
/// one probe through — success closes it, failure re-opens for another
/// cooldown. threshold == 0 disables the breaker (always closed).
class CircuitBreaker {
 public:
  struct Policy {
    int failure_threshold = 0;
    util::SimTime cooldown = 10 * util::kSecond;
  };
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  CircuitBreaker() = default;
  explicit CircuitBreaker(Policy policy) : policy_(policy) {}

  /// May a request be sent at `now`? Transitions open -> half-open when the
  /// cooldown has elapsed (the allowed request is the probe).
  bool allow(util::SimTime now);
  void record_success();
  void record_failure(util::SimTime now);

  State state() const { return state_; }
  std::uint64_t opens() const { return opens_; }
  std::uint64_t recloses() const { return recloses_; }

 private:
  Policy policy_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  util::SimTime opened_at_ = 0;
  bool probe_in_flight_ = false;
  std::uint64_t opens_ = 0;
  std::uint64_t recloses_ = 0;
};

}  // namespace p2pdrm::net
