#include "services/account_manager.h"

namespace p2pdrm::services {

AccountManager::AccountManager(ProvisioningSink sink) : sink_(std::move(sink)) {}

void AccountManager::set_sink(ProvisioningSink sink) {
  sink_ = std::move(sink);
  if (!sink_) return;
  for (const auto& [email, account] : accounts_) push(account);
}

bool AccountManager::create_account(const std::string& email,
                                    const std::string& password, util::SimTime now) {
  if (accounts_.contains(email)) return false;
  AccountRecord record;
  record.email = email;
  record.shp = core::password_hash(password);
  record.created_at = now;
  push(accounts_.emplace(email, std::move(record)).first->second);
  return true;
}

bool AccountManager::subscribe(const std::string& email, const SubscriptionGrant& grant) {
  const auto it = accounts_.find(email);
  if (it == accounts_.end()) return false;
  it->second.subscriptions.push_back(grant);
  push(it->second);
  return true;
}

bool AccountManager::unsubscribe(const std::string& email, const std::string& package) {
  const auto it = accounts_.find(email);
  if (it == accounts_.end()) return false;
  std::erase_if(it->second.subscriptions,
                [&](const SubscriptionGrant& g) { return g.package == package; });
  push(it->second);
  return true;
}

bool AccountManager::set_suspended(const std::string& email, bool suspended) {
  const auto it = accounts_.find(email);
  if (it == accounts_.end()) return false;
  it->second.suspended = suspended;
  push(it->second);
  return true;
}

bool AccountManager::check_password(const std::string& email,
                                    const std::string& password) const {
  const AccountRecord* record = find(email);
  if (record == nullptr) return false;
  const crypto::Sha256Digest attempt = core::password_hash(password);
  return util::constant_time_equal(util::BytesView(attempt.data(), attempt.size()),
                                   util::BytesView(record->shp.data(), record->shp.size()));
}

const AccountRecord* AccountManager::find(const std::string& email) const {
  const auto it = accounts_.find(email);
  return it == accounts_.end() ? nullptr : &it->second;
}

void AccountManager::push(const AccountRecord& account) {
  if (sink_) sink_(UserProvisioning{account});
}

}  // namespace p2pdrm::services
