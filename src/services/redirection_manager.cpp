#include "services/redirection_manager.h"

namespace p2pdrm::services {

void ManagerCoordinates::encode(util::WireWriter& w) const {
  w.u32(addr.ip);
  w.bytes(public_key);
}

ManagerCoordinates ManagerCoordinates::decode(util::WireReader& r) {
  ManagerCoordinates m;
  m.addr.ip = r.u32();
  m.public_key = r.bytes();
  return m;
}

util::Bytes RedirectRequest::encode() const {
  util::WireWriter w;
  w.str(email);
  return w.take();
}

RedirectRequest RedirectRequest::decode(util::BytesView data) {
  util::WireReader r(data);
  return RedirectRequest{r.str()};
}

util::Bytes RedirectResponse::encode() const {
  util::WireWriter w;
  w.u8(found ? 1 : 0);
  w.u32(domain);
  user_manager.encode(w);
  channel_policy_manager.encode(w);
  return w.take();
}

RedirectResponse RedirectResponse::decode(util::BytesView data) {
  util::WireReader r(data);
  RedirectResponse m;
  m.found = r.u8() == 1;
  m.domain = r.u32();
  m.user_manager = ManagerCoordinates::decode(r);
  m.channel_policy_manager = ManagerCoordinates::decode(r);
  return m;
}

void RedirectionManager::register_domain(std::uint32_t domain, ManagerCoordinates um) {
  Domain& d = domains_[domain];
  for (Instance& existing : d.instances) {
    if (existing.coords.addr == um.addr) {
      existing.coords = std::move(um);  // re-registration refreshes the key
      existing.healthy = true;
      return;
    }
  }
  d.instances.push_back(Instance{std::move(um), true});
}

void RedirectionManager::assign_user(const std::string& email, std::uint32_t domain) {
  user_domain_[email] = domain;
}

void RedirectionManager::set_channel_policy_manager(ManagerCoordinates cpm) {
  cpm_ = std::move(cpm);
}

void RedirectionManager::set_instance_health(std::uint32_t domain, util::NetAddr addr,
                                             bool healthy) {
  const auto it = domains_.find(domain);
  if (it == domains_.end()) return;
  for (Instance& instance : it->second.instances) {
    if (instance.coords.addr == addr) instance.healthy = healthy;
  }
}

std::size_t RedirectionManager::healthy_instances(std::uint32_t domain) const {
  const auto it = domains_.find(domain);
  if (it == domains_.end()) return 0;
  std::size_t n = 0;
  for (const Instance& instance : it->second.instances) {
    if (instance.healthy) ++n;
  }
  return n;
}

std::size_t RedirectionManager::instance_count(std::uint32_t domain) const {
  const auto it = domains_.find(domain);
  return it == domains_.end() ? 0 : it->second.instances.size();
}

RedirectResponse RedirectionManager::handle_lookup(const RedirectRequest& req) const {
  RedirectResponse resp;
  const auto user_it = user_domain_.find(req.email);
  if (user_it == user_domain_.end()) return resp;
  const auto dom_it = domains_.find(user_it->second);
  if (dom_it == domains_.end() || dom_it->second.instances.empty()) return resp;

  // Round-robin over healthy instances; with the whole farm down, hand out
  // the primary anyway (the client's retries will discover the outage).
  const Domain& d = dom_it->second;
  const Instance* pick = &d.instances[0];
  for (std::size_t i = 0; i < d.instances.size(); ++i) {
    const Instance& candidate = d.instances[(d.cursor + i) % d.instances.size()];
    if (candidate.healthy) {
      pick = &candidate;
      break;
    }
  }
  d.cursor = (d.cursor + 1) % d.instances.size();

  resp.found = true;
  resp.domain = user_it->second;
  resp.user_manager = pick->coords;
  resp.channel_policy_manager = cpm_;
  return resp;
}

}  // namespace p2pdrm::services
