#include "services/redirection_manager.h"

namespace p2pdrm::services {

void ManagerCoordinates::encode(util::WireWriter& w) const {
  w.u32(addr.ip);
  w.bytes(public_key);
}

ManagerCoordinates ManagerCoordinates::decode(util::WireReader& r) {
  ManagerCoordinates m;
  m.addr.ip = r.u32();
  m.public_key = r.bytes();
  return m;
}

util::Bytes RedirectRequest::encode() const {
  util::WireWriter w;
  w.str(email);
  return w.take();
}

RedirectRequest RedirectRequest::decode(util::BytesView data) {
  util::WireReader r(data);
  return RedirectRequest{r.str()};
}

util::Bytes RedirectResponse::encode() const {
  util::WireWriter w;
  w.u8(found ? 1 : 0);
  w.u32(domain);
  user_manager.encode(w);
  channel_policy_manager.encode(w);
  return w.take();
}

RedirectResponse RedirectResponse::decode(util::BytesView data) {
  util::WireReader r(data);
  RedirectResponse m;
  m.found = r.u8() == 1;
  m.domain = r.u32();
  m.user_manager = ManagerCoordinates::decode(r);
  m.channel_policy_manager = ManagerCoordinates::decode(r);
  return m;
}

void RedirectionManager::register_domain(std::uint32_t domain, ManagerCoordinates um) {
  domains_[domain] = std::move(um);
}

void RedirectionManager::assign_user(const std::string& email, std::uint32_t domain) {
  user_domain_[email] = domain;
}

void RedirectionManager::set_channel_policy_manager(ManagerCoordinates cpm) {
  cpm_ = std::move(cpm);
}

RedirectResponse RedirectionManager::handle_lookup(const RedirectRequest& req) const {
  RedirectResponse resp;
  const auto user_it = user_domain_.find(req.email);
  if (user_it == user_domain_.end()) return resp;
  const auto dom_it = domains_.find(user_it->second);
  if (dom_it == domains_.end()) return resp;
  resp.found = true;
  resp.domain = user_it->second;
  resp.user_manager = dom_it->second;
  resp.channel_policy_manager = cpm_;
  return resp;
}

}  // namespace p2pdrm::services
