// Channel Manager (§IV-C, §IV-D).
//
// Verifies User Tickets, evaluates channel policies, issues and renews
// Channel Tickets, enforces the one-account-one-session rule through the
// viewing-activity log, and hands out (unsigned) peer lists. Stateless per
// client like the User Manager; a farm serving one Channel Listing
// Partition shares the signing keys, farm secret, and the viewing log.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/messages.h"
#include "core/policy.h"
#include "core/ticket.h"
#include "crypto/chacha20.h"
#include "services/metrics.h"
#include "crypto/rsa.h"
#include "util/ids.h"

namespace p2pdrm::services {

/// Viewing-activity log (§IV-C purpose 3, §IV-D). Shared by every Channel
/// Manager instance in a partition's farm. Keeps both the latest entry per
/// (user, channel) — what renewal checks consult — and a full audit trail
/// for license payment, royalty payment, and billing.
class ViewingLog {
 public:
  struct Entry {
    util::UserIN user_in = 0;
    util::ChannelId channel = 0;
    util::NetAddr addr;
    util::SimTime time = 0;
    bool renewal = false;
  };

  void record(const Entry& entry);

  /// Latest *fresh-issue* entry for (user, channel); renewals do not move
  /// it (§IV-D: renewal matches against the latest new-ticket entry).
  const Entry* latest(util::UserIN user, util::ChannelId channel) const;

  std::size_t size() const { return audit_.size(); }
  const std::vector<Entry>& audit_trail() const { return audit_; }

  /// Fresh-issue view counts per channel (royalty/advertising reporting).
  std::map<util::ChannelId, std::size_t> views_per_channel() const;

  /// Durable form: billing and royalty data must survive manager restarts
  /// (the farm shares one log, so this is also the hand-off format when a
  /// partition's store moves).
  util::Bytes encode() const;
  /// Rebuild from encode()'s output (the latest-entry index is rederived).
  /// Throws util::WireError on corrupted input.
  static ViewingLog decode(util::BytesView data);

 private:
  std::vector<Entry> audit_;
  std::map<std::pair<util::UserIN, util::ChannelId>, Entry> latest_;
};

/// Where the Channel Manager gets candidate peers for a channel. The P2P
/// tracker implements this; tests use stubs.
class PeerDirectory {
 public:
  virtual ~PeerDirectory() = default;
  /// Up to `max_peers` peers carrying `channel`, excluding `requester`.
  virtual std::vector<core::PeerInfo> sample_peers(util::ChannelId channel,
                                                   std::size_t max_peers,
                                                   util::NetAddr requester) = 0;
};

struct ChannelManagerConfig {
  /// Channel Listing Partition this manager serves (§V).
  std::uint32_t partition = 0;
  /// Channel Ticket lifetime (further capped by the User Ticket's remaining
  /// lifetime, §IV-C).
  util::SimTime ticket_lifetime = 10 * util::kMinute;
  util::SimTime challenge_lifetime = 2 * util::kMinute;
  /// Renewal must be requested within this window before the old ticket's
  /// expiry ("within a small window of the ticket expiration time", §IV-D).
  util::SimTime renewal_window = 3 * util::kMinute;
  /// How many peers to return with a Channel Ticket.
  std::size_t peer_list_size = 8;
};

/// State shared by every instance of a partition's Channel Manager farm.
struct ChannelManagerPartition {
  ChannelManagerPartition(ChannelManagerConfig config, crypto::RsaKeyPair keys,
                          crypto::RsaPublicKey um_public_key, util::Bytes farm_secret)
      : config(config), keys(std::move(keys)),
        um_public_key(std::move(um_public_key)), farm_secret(std::move(farm_secret)) {}

  ChannelManagerConfig config;
  crypto::RsaKeyPair keys;
  crypto::RsaPublicKey um_public_key;
  util::Bytes farm_secret;
  std::map<util::ChannelId, core::ChannelRecord> channels;
  ViewingLog log;

  /// Farm-wide operational counters per protocol round.
  OpsCounters switch1_stats;
  OpsCounters switch2_stats;
  /// Content-key rotation pipeline: rotations issued by this partition's
  /// channel servers vs epochs delivered to peers over the overlay fan-out
  /// (written by the deployment layer, not the manager handlers).
  OpsCounters key_stats;
};

class ChannelManager {
 public:
  ChannelManager(std::shared_ptr<ChannelManagerPartition> partition,
                 PeerDirectory* peers, crypto::SecureRandom rng);

  /// Ingest hook for Channel Policy Manager channel-list pushes; keeps only
  /// channels assigned to this partition.
  void update_channel_list(const std::vector<core::ChannelRecord>& list);

  core::Switch1Response handle_switch1(const core::Switch1Request& req,
                                       util::NetAddr conn_addr, util::SimTime now);
  core::Switch2Response handle_switch2(const core::Switch2Request& req,
                                       util::NetAddr conn_addr, util::SimTime now);

  const crypto::RsaPublicKey& public_key() const { return partition_->keys.pub; }
  const ViewingLog& log() const { return partition_->log; }
  const ChannelManagerPartition& partition() const { return *partition_; }

 private:
  core::Switch1Response do_switch1(const core::Switch1Request& req,
                                   util::NetAddr conn_addr, util::SimTime now);
  core::Switch2Response do_switch2(const core::Switch2Request& req,
                                   util::NetAddr conn_addr, util::SimTime now);

  struct ValidatedRequest {
    core::SignedUserTicket user_ticket;
    util::ChannelId channel_id = 0;
    std::optional<core::SignedChannelTicket> expiring;
    const core::ChannelRecord* channel = nullptr;
  };

  /// Shared validation for both rounds; returns error or the parsed pieces.
  std::optional<core::DrmError> validate(const util::Bytes& user_ticket_bytes,
                                         util::ChannelId channel_id,
                                         const util::Bytes& expiring_bytes,
                                         util::NetAddr conn_addr, util::SimTime now,
                                         ValidatedRequest& out) const;

  util::Bytes switch_binding(const util::Bytes& user_ticket_bytes,
                             util::ChannelId channel_id,
                             const util::Bytes& expiring_bytes) const;

  std::shared_ptr<ChannelManagerPartition> partition_;
  PeerDirectory* peers_;
  mutable crypto::SecureRandom rng_;
};

}  // namespace p2pdrm::services
