// Channel Manager (§IV-C, §IV-D).
//
// Verifies User Tickets, evaluates channel policies, issues and renews
// Channel Tickets, enforces the one-account-one-session rule through the
// viewing-activity log, and hands out (unsigned) peer lists. Stateless per
// client like the User Manager; a farm serving one Channel Listing
// Partition shares the signing keys, farm secret, and the viewing log.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/messages.h"
#include "core/policy.h"
#include "core/ticket.h"
#include "crypto/chacha20.h"
#include "services/metrics.h"
#include "crypto/rsa.h"
#include "util/ids.h"

namespace p2pdrm::services {

/// Viewing-activity log (§IV-C purpose 3, §IV-D). One per Channel Manager
/// farm replica. Keeps both the latest entry per (user, channel) — what
/// renewal checks consult — and a full audit trail for license payment,
/// royalty payment, and billing.
///
/// Entries merge commutatively across replicas: `latest_` only moves
/// forward in entry time (last-writer-wins on equal timestamps), so two
/// replicas applying the same entries in different interleavings converge.
///
/// Week-scale runs bound memory with set_audit_cap(): once the audit trail
/// exceeds the cap it rotates down to half the cap, folding evicted entries
/// into per-channel aggregates so size() and views_per_channel() stay
/// exact. Rotation never evicts an entry that is the live latest fresh
/// issue for its (user, channel) — the renewal index stays derivable from
/// the retained audit trail alone.
class ViewingLog {
 public:
  struct Entry {
    util::UserIN user_in = 0;
    util::ChannelId channel = 0;
    util::NetAddr addr;
    util::SimTime time = 0;
    bool renewal = false;
  };

  void record(const Entry& entry);

  /// Latest *fresh-issue* entry for (user, channel); renewals do not move
  /// it (§IV-D: renewal matches against the latest new-ticket entry).
  const Entry* latest(util::UserIN user, util::ChannelId channel) const;

  /// Total entries ever recorded (retained + rotated).
  std::size_t size() const { return audit_.size() + rotated_count_; }
  /// Entries still held verbatim (≤ size() once rotation kicks in).
  const std::vector<Entry>& audit_trail() const { return audit_; }
  std::uint64_t rotated_count() const { return rotated_count_; }

  /// 0 = unbounded (default).
  void set_audit_cap(std::size_t cap);
  std::size_t audit_cap() const { return audit_cap_; }

  /// Fresh-issue view counts per channel (royalty/advertising reporting);
  /// exact even after rotation, via the retained aggregates.
  std::map<util::ChannelId, std::size_t> views_per_channel() const;

  /// Durable form: billing and royalty data must survive manager restarts
  /// (this is also what a farm replica snapshots). Deterministic: equal
  /// logs encode to identical bytes.
  util::Bytes encode() const;
  /// Rebuild from encode()'s output (the latest-entry index is rederived).
  /// Throws util::WireError on corrupted input. The audit cap is not part
  /// of the durable form; the caller re-applies it.
  static ViewingLog decode(util::BytesView data);

 private:
  bool is_live_latest(const Entry& e) const;
  void maybe_rotate();

  std::vector<Entry> audit_;
  std::map<std::pair<util::UserIN, util::ChannelId>, Entry> latest_;
  std::size_t audit_cap_ = 0;
  std::uint64_t rotated_count_ = 0;
  std::map<util::ChannelId, std::uint64_t> rotated_views_;
};

/// Where the Channel Manager gets candidate peers for a channel. The P2P
/// tracker implements this; tests use stubs.
class PeerDirectory {
 public:
  virtual ~PeerDirectory() = default;
  /// Up to `max_peers` peers carrying `channel`, excluding `requester`.
  virtual std::vector<core::PeerInfo> sample_peers(util::ChannelId channel,
                                                   std::size_t max_peers,
                                                   util::NetAddr requester) = 0;
};

struct ChannelManagerConfig {
  /// Channel Listing Partition this manager serves (§V).
  std::uint32_t partition = 0;
  /// Channel Ticket lifetime (further capped by the User Ticket's remaining
  /// lifetime, §IV-C).
  util::SimTime ticket_lifetime = 10 * util::kMinute;
  util::SimTime challenge_lifetime = 2 * util::kMinute;
  /// Renewal must be requested within this window before the old ticket's
  /// expiry ("within a small window of the ticket expiration time", §IV-D).
  util::SimTime renewal_window = 3 * util::kMinute;
  /// How many peers to return with a Channel Ticket.
  std::size_t peer_list_size = 8;
};

/// State shared by every instance of a partition's Channel Manager farm.
struct ChannelManagerPartition {
  ChannelManagerPartition(ChannelManagerConfig config, crypto::RsaKeyPair keys,
                          crypto::RsaPublicKey um_public_key, util::Bytes farm_secret)
      : config(config), keys(std::move(keys)),
        um_public_key(std::move(um_public_key)), farm_secret(std::move(farm_secret)) {}

  ChannelManagerConfig config;
  crypto::RsaKeyPair keys;
  crypto::RsaPublicKey um_public_key;
  util::Bytes farm_secret;
  std::map<util::ChannelId, core::ChannelRecord> channels;
  ViewingLog log;

  /// Farm-wide operational counters per protocol round.
  OpsCounters switch1_stats;
  OpsCounters switch2_stats;
  /// Content-key rotation pipeline: rotations issued by this partition's
  /// channel servers vs epochs delivered to peers over the overlay fan-out
  /// (written by the deployment layer, not the manager handlers).
  OpsCounters key_stats;
};

class ChannelManager {
 public:
  /// Notified after every viewing-log append this manager performs; the
  /// durable deployment journals + replicates the entry from here.
  using ViewingSink = std::function<void(const ViewingLog::Entry&)>;

  ChannelManager(std::shared_ptr<ChannelManagerPartition> partition,
                 PeerDirectory* peers, crypto::SecureRandom rng);

  /// Ingest hook for Channel Policy Manager channel-list pushes; keeps only
  /// channels assigned to this partition.
  void update_channel_list(const std::vector<core::ChannelRecord>& list);

  /// Re-home the viewing log onto an instance-owned replica instead of the
  /// partition-shared one (durable deployments). `log` must outlive this
  /// manager; pass nullptr to revert to the shared log.
  void use_local_log(ViewingLog* log);
  void set_viewing_sink(ViewingSink sink) { viewing_sink_ = std::move(sink); }

  core::Switch1Response handle_switch1(const core::Switch1Request& req,
                                       util::NetAddr conn_addr, util::SimTime now);
  core::Switch2Response handle_switch2(const core::Switch2Request& req,
                                       util::NetAddr conn_addr, util::SimTime now);

  const crypto::RsaPublicKey& public_key() const { return partition_->keys.pub; }
  const ViewingLog& log() const { return *log_; }
  const ChannelManagerPartition& partition() const { return *partition_; }

 private:
  core::Switch1Response do_switch1(const core::Switch1Request& req,
                                   util::NetAddr conn_addr, util::SimTime now);
  core::Switch2Response do_switch2(const core::Switch2Request& req,
                                   util::NetAddr conn_addr, util::SimTime now);

  struct ValidatedRequest {
    core::SignedUserTicket user_ticket;
    util::ChannelId channel_id = 0;
    std::optional<core::SignedChannelTicket> expiring;
    const core::ChannelRecord* channel = nullptr;
  };

  /// Shared validation for both rounds; returns error or the parsed pieces.
  std::optional<core::DrmError> validate(const util::Bytes& user_ticket_bytes,
                                         util::ChannelId channel_id,
                                         const util::Bytes& expiring_bytes,
                                         util::NetAddr conn_addr, util::SimTime now,
                                         ValidatedRequest& out) const;

  util::Bytes switch_binding(const util::Bytes& user_ticket_bytes,
                             util::ChannelId channel_id,
                             const util::Bytes& expiring_bytes) const;

  std::shared_ptr<ChannelManagerPartition> partition_;
  ViewingLog* log_;  // partition_->log by default; instance replica when durable
  ViewingSink viewing_sink_;
  PeerDirectory* peers_;
  mutable crypto::SecureRandom rng_;
};

}  // namespace p2pdrm::services
