// Account Manager (§II "Viewing Experience", §IV-B).
//
// Account creation, subscription purchase, and top-ups happen out-of-band at
// the service provider's web site — this class models that site's backend.
// It owns the authoritative account records and "securely sends the user's
// identification, subscription, and payment information to the User
// Manager" (modeled as a provisioning feed the User Manager subscribes to).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/auth.h"
#include "util/time.h"

namespace p2pdrm::services {

/// One subscription grant: a package name with a validity window.
struct SubscriptionGrant {
  std::string package;                       // e.g. "101" (Fig. 2's example)
  util::SimTime stime = util::kNullTime;     // null = active immediately
  util::SimTime etime = util::kNullTime;     // null = never expires

  friend bool operator==(const SubscriptionGrant&, const SubscriptionGrant&) = default;
};

struct AccountRecord {
  std::string email;
  crypto::Sha256Digest shp{};  // secure hash of password; never the password
  std::vector<SubscriptionGrant> subscriptions;
  util::SimTime created_at = 0;
  bool suspended = false;
};

/// Provisioning message pushed to the User Manager whenever an account
/// changes (creation, subscription change, suspension).
struct UserProvisioning {
  AccountRecord account;
};

class AccountManager {
 public:
  using ProvisioningSink = std::function<void(const UserProvisioning&)>;

  /// `sink` receives every account creation/update (the User Manager's
  /// ingest hook). May be empty; set_sink can attach one later, which
  /// replays all existing accounts.
  explicit AccountManager(ProvisioningSink sink = nullptr);

  void set_sink(ProvisioningSink sink);

  /// Create an account. Returns false if the email is already registered.
  bool create_account(const std::string& email, const std::string& password,
                      util::SimTime now);

  /// Add a subscription grant. Returns false for unknown accounts.
  bool subscribe(const std::string& email, const SubscriptionGrant& grant);

  /// Remove all grants for a package. Returns false for unknown accounts.
  bool unsubscribe(const std::string& email, const std::string& package);

  /// Suspend/unsuspend (e.g. payment failure). Returns false if unknown.
  bool set_suspended(const std::string& email, bool suspended);

  /// Verify a password attempt (used by tests; the User Manager never sees
  /// passwords, only shp digests).
  bool check_password(const std::string& email, const std::string& password) const;

  const AccountRecord* find(const std::string& email) const;
  std::size_t account_count() const { return accounts_.size(); }

 private:
  void push(const AccountRecord& account);

  std::map<std::string, AccountRecord> accounts_;
  ProvisioningSink sink_;
};

}  // namespace p2pdrm::services
