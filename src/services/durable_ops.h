// Wire codecs for the per-op payloads a durable farm replica journals and
// replicates (store::ReplicatedOp bodies) and for the snapshot form of the
// UM user directory. Kept out of the domain classes so the store layer
// stays ignorant of what it is persisting.
#pragma once

#include "services/channel_manager.h"
#include "services/user_manager.h"
#include "util/bytes.h"

namespace p2pdrm::services {

/// CM replicated op: one viewing-log entry.
util::Bytes encode_viewing_entry(const ViewingLog::Entry& entry);
ViewingLog::Entry decode_viewing_entry(util::BytesView data);  // throws WireError

/// UM replicated op: one provisioned user record (email, shp, grants, …).
util::Bytes encode_user_record(const UserRecord& rec);
UserRecord decode_user_record(util::BytesView data);  // throws WireError

/// UM snapshot state: the whole directory. Deterministic (map order).
util::Bytes encode_user_directory(const UserDirectory& dir);
UserDirectory decode_user_directory(util::BytesView data);  // throws WireError

}  // namespace p2pdrm::services
