// User Manager (§IV-B, §IV-F1).
//
// Authenticates users, runs the two-round login protocol (LOGIN1/LOGIN2),
// synthesizes user attributes from account data + connection information +
// the Channel Attribute List, and issues signed User Tickets that also
// certify the client's public key.
//
// The handlers are *stateless* with respect to clients (§V): a login begun
// against one farm instance can complete against another, because the
// LOGIN1 challenge is self-contained (MAC under the farm secret). All farm
// instances share the signing key pair, the farm secret, and the user DB.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/messages.h"
#include "core/ticket.h"
#include "crypto/rsa.h"
#include "geo/geodb.h"
#include "services/account_manager.h"
#include "services/metrics.h"
#include "util/ids.h"

namespace p2pdrm::services {

struct UserManagerConfig {
  /// Authentication Domain this manager serves (§V).
  std::uint32_t domain = 0;
  /// User Ticket lifetime. The paper recommends "less than the average
  /// length of a program in the channel"; default 30 minutes.
  util::SimTime ticket_lifetime = 30 * util::kMinute;
  /// How long a LOGIN1 challenge stays valid.
  util::SimTime challenge_lifetime = 2 * util::kMinute;
  /// Minimum client version admitted (enforced via the Version attribute
  /// and the login protocol).
  std::uint32_t minimum_client_version = 1;
  /// Largest attestation window the manager will request.
  std::uint32_t max_checksum_window = 64 * 1024;
};

struct UserRecord {
  util::UserIN user_in = 0;
  AccountRecord account;
};

/// The user DB proper — the *mutable* half of a User Manager's state.
/// Durable deployments give each farm instance its own replica (backed by a
/// journaled store); the shared-state default keeps one per domain.
struct UserDirectory {
  std::map<std::string, UserRecord> users;  // keyed by email
  util::UserIN next_user_in = 1;
};

/// Shared state of a User Manager *farm*: every instance serving one
/// Authentication Domain shares the signing key, farm secret, and user DB
/// so that the farm presents the logical view of a single User Manager.
struct UserManagerDomain {
  UserManagerDomain(UserManagerConfig config, crypto::RsaKeyPair keys,
                    util::Bytes farm_secret)
      : config(config), keys(std::move(keys)), farm_secret(std::move(farm_secret)) {}

  UserManagerConfig config;
  crypto::RsaKeyPair keys;
  util::Bytes farm_secret;

  /// Legacy alias so callers can keep saying `UserManagerDomain::UserRecord`.
  using UserRecord = services::UserRecord;

  UserDirectory directory;

  /// Reference client binaries by version, used to verify attestation
  /// checksums. In production these are the released builds.
  std::map<std::uint32_t, util::Bytes> reference_binaries;

  /// Channel Attribute List pushed by the Channel Policy Manager; source of
  /// utime stamps on user attributes.
  core::AttributeSet channel_attribute_list;

  /// Farm-wide operational counters per protocol round.
  OpsCounters login1_stats;
  OpsCounters login2_stats;
};

class UserManager {
 public:
  /// `geo` supplies Region/AS inference; may be nullptr (attributes omitted,
  /// used by some unit tests).
  UserManager(std::shared_ptr<UserManagerDomain> domain,
              const geo::GeoDatabase* geo, crypto::SecureRandom rng);

  /// Re-home the user DB onto an instance-owned replica instead of the
  /// domain-shared one (durable deployments). `dir` must outlive this
  /// manager; pass nullptr to revert to the shared directory.
  void use_local_directory(UserDirectory* dir);

  /// Ingest hook for Account Manager provisioning pushes. Returns the
  /// resulting record (with its assigned UserIN) so a durable deployment
  /// can journal + replicate it.
  const UserRecord& provision(const UserProvisioning& p);

  /// Apply an already-assigned record replicated from a sibling instance:
  /// upserts by email, keeping next_user_in past the record's UserIN.
  void apply_provision(const UserRecord& rec);

  /// Ingest hook for Channel Policy Manager attribute-list pushes.
  void update_channel_attributes(core::AttributeSet list);

  core::Login1Response handle_login1(const core::Login1Request& req,
                                     util::NetAddr conn_addr, util::SimTime now);
  core::Login2Response handle_login2(const core::Login2Request& req,
                                     util::NetAddr conn_addr, util::SimTime now);

  /// Attribute synthesis (also used directly by tests): account data +
  /// connection info + Channel Attribute List -> user attributes.
  core::AttributeSet synthesize_attributes(const AccountRecord& account,
                                           util::NetAddr conn_addr,
                                           std::uint32_t client_version,
                                           util::SimTime now) const;

  const crypto::RsaPublicKey& public_key() const { return domain_->keys.pub; }
  const UserManagerDomain& domain() const { return *domain_; }

  /// Look up the UserIN assigned to an email (0 if unknown).
  util::UserIN user_in_of(const std::string& email) const;

 private:
  core::Login1Response do_login1(const core::Login1Request& req,
                                 util::NetAddr conn_addr, util::SimTime now);
  core::Login2Response do_login2(const core::Login2Request& req,
                                 util::NetAddr conn_addr, util::SimTime now);

  util::Bytes login_binding(const std::string& email,
                            const crypto::RsaPublicKey& client_key,
                            std::uint32_t client_version,
                            const core::ChecksumParams& params) const;

  std::shared_ptr<UserManagerDomain> domain_;
  UserDirectory* dir_;  // domain_->directory by default; replica when durable
  const geo::GeoDatabase* geo_;
  mutable crypto::SecureRandom rng_;
};

}  // namespace p2pdrm::services
