#include "services/durable_ops.h"

#include <algorithm>

#include "util/wire.h"

namespace p2pdrm::services {
namespace {

void encode_account(util::WireWriter& w, const AccountRecord& a) {
  w.str(a.email);
  w.raw(util::BytesView(a.shp.data(), a.shp.size()));
  w.u32(static_cast<std::uint32_t>(a.subscriptions.size()));
  for (const SubscriptionGrant& g : a.subscriptions) {
    w.str(g.package);
    w.i64(g.stime);
    w.i64(g.etime);
  }
  w.i64(a.created_at);
  w.u8(a.suspended ? 1 : 0);
}

AccountRecord decode_account(util::WireReader& r) {
  AccountRecord a;
  a.email = r.str();
  const util::Bytes shp = r.raw(a.shp.size());
  std::copy(shp.begin(), shp.end(), a.shp.begin());
  const std::uint32_t grants = r.u32();
  // 17 bytes minimum per grant (4-byte package prefix + two times + flag
  // margin); reject counts the input cannot back.
  if (grants > r.remaining() / 17) {
    throw util::WireError("account: implausible grant count");
  }
  for (std::uint32_t i = 0; i < grants; ++i) {
    SubscriptionGrant g;
    g.package = r.str();
    g.stime = r.i64();
    g.etime = r.i64();
    a.subscriptions.push_back(std::move(g));
  }
  a.created_at = r.i64();
  const std::uint8_t suspended = r.u8();
  if (suspended > 1) throw util::WireError("account: bad suspended flag");
  a.suspended = suspended == 1;
  return a;
}

}  // namespace

util::Bytes encode_viewing_entry(const ViewingLog::Entry& entry) {
  util::WireWriter w;
  w.u64(entry.user_in);
  w.u32(entry.channel);
  w.u32(entry.addr.ip);
  w.i64(entry.time);
  w.u8(entry.renewal ? 1 : 0);
  return w.take();
}

ViewingLog::Entry decode_viewing_entry(util::BytesView data) {
  util::WireReader r(data);
  ViewingLog::Entry e;
  e.user_in = r.u64();
  e.channel = r.u32();
  e.addr.ip = r.u32();
  e.time = r.i64();
  const std::uint8_t renewal = r.u8();
  if (renewal > 1) throw util::WireError("viewing entry: bad renewal flag");
  e.renewal = renewal == 1;
  if (!r.at_end()) throw util::WireError("viewing entry: trailing bytes");
  return e;
}

util::Bytes encode_user_record(const UserRecord& rec) {
  util::WireWriter w;
  w.u64(rec.user_in);
  encode_account(w, rec.account);
  return w.take();
}

UserRecord decode_user_record(util::BytesView data) {
  util::WireReader r(data);
  UserRecord rec;
  rec.user_in = r.u64();
  rec.account = decode_account(r);
  if (!r.at_end()) throw util::WireError("user record: trailing bytes");
  return rec;
}

util::Bytes encode_user_directory(const UserDirectory& dir) {
  util::WireWriter w;
  w.u64(dir.next_user_in);
  w.u32(static_cast<std::uint32_t>(dir.users.size()));
  for (const auto& [email, rec] : dir.users) {
    w.u64(rec.user_in);
    encode_account(w, rec.account);
  }
  return w.take();
}

UserDirectory decode_user_directory(util::BytesView data) {
  util::WireReader r(data);
  UserDirectory dir;
  dir.next_user_in = r.u64();
  const std::uint32_t count = r.u32();
  // ≥ 50 bytes per record (user_in + email prefix + 32-byte shp + times);
  // reject counts the input cannot back.
  if (count > r.remaining() / 50) {
    throw util::WireError("user directory: implausible record count");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    UserRecord rec;
    rec.user_in = r.u64();
    rec.account = decode_account(r);
    if (dir.users.count(rec.account.email) > 0) {
      throw util::WireError("user directory: duplicate email");
    }
    dir.users[rec.account.email] = std::move(rec);
  }
  if (!r.at_end()) throw util::WireError("user directory: trailing bytes");
  return dir;
}

}  // namespace p2pdrm::services
