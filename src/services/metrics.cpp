#include "services/metrics.h"

#include <algorithm>

namespace p2pdrm::services {

namespace {

/// Every DrmError value, in enum order — the iteration order of the old
/// map-based implementation, which to_string and merge must preserve.
constexpr core::DrmError kAllOutcomes[] = {
    core::DrmError::kOk,            core::DrmError::kUnknownUser,
    core::DrmError::kBadCredentials, core::DrmError::kAttestationFailed,
    core::DrmError::kVersionTooOld, core::DrmError::kBadTicket,
    core::DrmError::kTicketExpired, core::DrmError::kAddressMismatch,
    core::DrmError::kAccessDenied,  core::DrmError::kUnknownChannel,
    core::DrmError::kRenewalRefused, core::DrmError::kChallengeInvalid,
    core::DrmError::kNoCapacity,    core::DrmError::kWrongChannel,
    core::DrmError::kWrongPartition, core::DrmError::kWrongDomain,
};

}  // namespace

std::uint64_t OpsCounters::count(core::DrmError outcome) const {
  const obs::Counter* c = registry_.find_counter(
      "ops{" + std::string(core::to_string(outcome)) + "}");
  return c == nullptr ? 0 : c->value();
}

void OpsCounters::merge(const OpsCounters& other) {
  // Snapshot first so merging a counter set into itself doubles it rather
  // than reading values mid-mutation.
  std::uint64_t counts[std::size(kAllOutcomes)];
  for (std::size_t i = 0; i < std::size(kAllOutcomes); ++i) {
    counts[i] = other.count(kAllOutcomes[i]);
  }
  const std::uint64_t other_total = other.total();
  const std::uint64_t other_rotations = other.rotations_issued();
  const std::uint64_t other_epochs = other.epochs_delivered();
  const std::int64_t other_staleness = other.max_key_staleness_us();
  registry_.counter("ops.total").inc(other_total);
  for (std::size_t i = 0; i < std::size(kAllOutcomes); ++i) {
    if (counts[i] == 0) continue;
    registry_.counter("ops", std::string(core::to_string(kAllOutcomes[i])))
        .inc(counts[i]);
  }
  if (other_rotations != 0) {
    registry_.counter("keys.rotations_issued").inc(other_rotations);
  }
  if (other_epochs != 0) {
    registry_.counter("keys.epochs_delivered").inc(other_epochs);
  }
  if (other_staleness != 0) note_key_staleness(other_staleness);
}

std::string OpsCounters::to_string() const {
  std::string out;
  for (const core::DrmError outcome : kAllOutcomes) {
    const std::uint64_t n = count(outcome);
    if (n == 0) continue;
    if (!out.empty()) out += " ";
    out += std::string(core::to_string(outcome)) + "=" + std::to_string(n);
  }
  const auto append = [&out](const char* key, std::uint64_t n) {
    if (n == 0) return;
    if (!out.empty()) out += " ";
    out += key;
    out += "=" + std::to_string(n);
  };
  append("rotations-issued", rotations_issued());
  append("epochs-delivered", epochs_delivered());
  append("max-key-staleness-us",
         static_cast<std::uint64_t>(std::max<std::int64_t>(0, max_key_staleness_us())));
  return out.empty() ? "(no requests)" : out;
}

}  // namespace p2pdrm::services
