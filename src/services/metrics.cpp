#include "services/metrics.h"

namespace p2pdrm::services {

std::string OpsCounters::to_string() const {
  std::string out;
  for (const auto& [outcome, count] : by_outcome_) {
    if (!out.empty()) out += " ";
    out += std::string(core::to_string(outcome)) + "=" + std::to_string(count);
  }
  return out.empty() ? "(no requests)" : out;
}

}  // namespace p2pdrm::services
