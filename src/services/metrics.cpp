#include "services/metrics.h"

namespace p2pdrm::services {

void OpsCounters::merge(const OpsCounters& other) {
  total_ += other.total_;
  for (const auto& [outcome, count] : other.by_outcome_) by_outcome_[outcome] += count;
}

void OpsCounters::reset() {
  total_ = 0;
  by_outcome_.clear();
}

std::string OpsCounters::to_string() const {
  std::string out;
  for (const auto& [outcome, count] : by_outcome_) {
    if (!out.empty()) out += " ";
    out += std::string(core::to_string(outcome)) + "=" + std::to_string(count);
  }
  return out.empty() ? "(no requests)" : out;
}

}  // namespace p2pdrm::services
