#include "services/user_manager.h"

#include "core/auth.h"
#include "crypto/hmac.h"

namespace p2pdrm::services {

using core::DrmError;

UserManager::UserManager(std::shared_ptr<UserManagerDomain> domain,
                         const geo::GeoDatabase* geo, crypto::SecureRandom rng)
    : domain_(std::move(domain)), dir_(&domain_->directory), geo_(geo),
      rng_(std::move(rng)) {}

void UserManager::use_local_directory(UserDirectory* dir) {
  dir_ = dir != nullptr ? dir : &domain_->directory;
}

const UserRecord& UserManager::provision(const UserProvisioning& p) {
  auto [it, inserted] = dir_->users.try_emplace(p.account.email);
  if (inserted) it->second.user_in = dir_->next_user_in++;
  it->second.account = p.account;
  return it->second;
}

void UserManager::apply_provision(const UserRecord& rec) {
  dir_->users[rec.account.email] = rec;
  if (rec.user_in >= dir_->next_user_in) dir_->next_user_in = rec.user_in + 1;
}

void UserManager::update_channel_attributes(core::AttributeSet list) {
  domain_->channel_attribute_list = std::move(list);
}

util::UserIN UserManager::user_in_of(const std::string& email) const {
  const auto it = dir_->users.find(email);
  return it == dir_->users.end() ? 0 : it->second.user_in;
}

util::Bytes UserManager::login_binding(const std::string& email,
                                       const crypto::RsaPublicKey& client_key,
                                       std::uint32_t client_version,
                                       const core::ChecksumParams& params) const {
  util::WireWriter w;
  w.str(email);
  const crypto::Sha256Digest fp = client_key.fingerprint();
  w.raw(util::BytesView(fp.data(), fp.size()));
  w.u32(client_version);
  params.encode(w);
  return w.take();
}

core::Login1Response UserManager::do_login1(const core::Login1Request& req,
                                                util::NetAddr /*conn_addr*/,
                                                util::SimTime now) {
  core::Login1Response resp;
  if (req.client_version < domain_->config.minimum_client_version) {
    resp.error = DrmError::kVersionTooOld;
    return resp;
  }
  const auto user_it = dir_->users.find(req.email);
  const bool known =
      user_it != dir_->users.end() && !user_it->second.account.suspended;
  // Anti-oracle: an unknown (or suspended) account gets a decoy response
  // that is shape-identical to a real one — same error code, same rng draw
  // order, same field sizes — built under a deterministic decoy shp derived
  // from the farm secret. Without the account's password nobody can decrypt
  // the payload either way, so a forgery probe learns nothing about whether
  // the email exists. The probe only fails later, at LOGIN2, with the same
  // kChallengeInvalid / kBadCredentials envelope a wrong password earns.
  crypto::Sha256Digest shp;
  if (known) {
    shp = user_it->second.account.shp;
  } else {
    util::Bytes label;
    const std::string_view tag = "p2pdrm-decoy-shp";
    label.insert(label.end(), tag.begin(), tag.end());
    label.insert(label.end(), req.email.begin(), req.email.end());
    shp = crypto::hmac_sha256(domain_->farm_secret, label);
  }
  const auto bin_it = domain_->reference_binaries.find(req.client_version);
  if (bin_it == domain_->reference_binaries.end()) {
    resp.error = DrmError::kVersionTooOld;
    return resp;
  }
  const util::Bytes& binary = bin_it->second;

  // Fresh attestation window over the reference binary.
  core::ChecksumParams params;
  params.offset = static_cast<std::uint32_t>(rng_.uniform(std::max<std::size_t>(binary.size() / 2, 1)));
  const std::size_t remaining = binary.size() - params.offset;
  const std::size_t max_len =
      std::min<std::size_t>(remaining, domain_->config.max_checksum_window);
  params.length = static_cast<std::uint32_t>(rng_.uniform(std::max<std::size_t>(max_len, 1)) + 1);
  params.salt = rng_.next_u64();

  const util::Bytes nonce = rng_.bytes(core::kNonceSize);

  // nonce || params || server time, readable only with the user's password.
  util::WireWriter payload;
  payload.raw(nonce);
  params.encode(payload);
  payload.i64(now);
  resp.encrypted_params = core::encrypt_with_shp(shp, payload.data(), rng_);

  // The challenge MAC commits to the nonce, but the nonce itself is NOT in
  // the clear part of the response — the client recovers it by decrypting
  // encrypted_params and fills it into the echoed challenge. A correct echo
  // therefore proves knowledge of the password.
  resp.challenge = core::make_challenge(
      domain_->farm_secret, "login",
      login_binding(req.email, req.client_public_key, req.client_version, params),
      nonce, now);
  resp.challenge.nonce.clear();
  return resp;
}

core::Login2Response UserManager::do_login2(const core::Login2Request& req,
                                                util::NetAddr conn_addr,
                                                util::SimTime now) {
  core::Login2Response resp;
  resp.server_time = now;
  resp.minimum_version = domain_->config.minimum_client_version;

  if (req.client_version < domain_->config.minimum_client_version) {
    resp.error = DrmError::kVersionTooOld;
    return resp;
  }
  // NOTE: no account lookup here — see the LOGIN1 decoy. An unknown email
  // fails the challenge check below exactly like a wrong password does
  // (the prober could not decrypt the decoy nonce), and the residual
  // lookup at ticket-issuance time answers with the same kBadCredentials
  // envelope a bad proof signature earns. Neither branch oracles account
  // existence.

  // Challenge echo: authentic, fresh, and bound to this email/key/params.
  // The MAC covers the nonce the server minted; the client could only have
  // filled it in by decrypting the LOGIN1 payload, so a valid echo proves
  // password knowledge.
  if (!core::verify_challenge(
          req.challenge, domain_->farm_secret, "login",
          login_binding(req.email, req.client_public_key, req.client_version,
                        req.params),
          now, domain_->config.challenge_lifetime)) {
    resp.error = DrmError::kChallengeInvalid;
    return resp;
  }

  // Proof of private-key possession: signature over nonce || checksum.
  util::Bytes signed_payload = req.challenge.nonce;
  signed_payload.insert(signed_payload.end(), req.checksum.begin(), req.checksum.end());
  if (!crypto::rsa_verify(req.client_public_key, signed_payload, req.proof)) {
    resp.error = DrmError::kBadCredentials;
    return resp;
  }

  // Remote attestation: recompute the checksum over the reference binary.
  const auto bin_it = domain_->reference_binaries.find(req.client_version);
  if (bin_it == domain_->reference_binaries.end()) {
    resp.error = DrmError::kVersionTooOld;
    return resp;
  }
  const util::Bytes expected =
      core::compute_attestation_checksum(bin_it->second, req.params);
  if (!util::constant_time_equal(expected, req.checksum)) {
    resp.error = DrmError::kAttestationFailed;
    return resp;
  }

  // Residual lookup at issuance time only. Unreachable for an unknown
  // account in practice (the challenge above can't be satisfied without
  // decrypting the decoy payload), but if it is ever reached it answers
  // with the same envelope — and after the same MAC + signature work — as
  // a bad proof signature, so it is not an existence oracle.
  const auto user_it = dir_->users.find(req.email);
  if (user_it == dir_->users.end() || user_it->second.account.suspended) {
    resp.error = DrmError::kBadCredentials;
    return resp;
  }

  // Issue the User Ticket (this also certifies the client's public key).
  core::UserTicket ticket;
  ticket.user_in = user_it->second.user_in;
  ticket.client_public_key = req.client_public_key;
  ticket.start_time = now;
  ticket.attributes =
      synthesize_attributes(user_it->second.account, conn_addr, req.client_version, now);
  ticket.expiry_time = now + domain_->config.ticket_lifetime;
  // Never outlive any attribute (§IV-B): renewal before the first expiry.
  if (const auto earliest = ticket.attributes.earliest_expiry();
      earliest && *earliest < ticket.expiry_time) {
    ticket.expiry_time = *earliest;
  }

  resp.ticket = core::SignedUserTicket::sign(ticket, domain_->keys.priv);
  return resp;
}

core::Login1Response UserManager::handle_login1(const core::Login1Request& req,
                                                util::NetAddr conn_addr,
                                                util::SimTime now) {
  core::Login1Response resp = do_login1(req, conn_addr, now);
  domain_->login1_stats.record(resp.error);
  return resp;
}

core::Login2Response UserManager::handle_login2(const core::Login2Request& req,
                                                util::NetAddr conn_addr,
                                                util::SimTime now) {
  core::Login2Response resp = do_login2(req, conn_addr, now);
  domain_->login2_stats.record(resp.error);
  return resp;
}

core::AttributeSet UserManager::synthesize_attributes(const AccountRecord& account,
                                                      util::NetAddr conn_addr,
                                                      std::uint32_t client_version,
                                                      util::SimTime now) const {
  core::AttributeSet attrs;

  // utime provenance: each synthesized attribute inherits the utime of the
  // matching entry in the Channel Attribute List, which is what tells the
  // client its cached Channel List went stale (§IV-B).
  const auto utime_for = [&](const std::string& name, const core::AttrValue& value) {
    for (const core::Attribute& a : domain_->channel_attribute_list.items()) {
      if (a.name == name && core::values_match(a.value, value)) return a.utime;
    }
    return util::kNullTime;
  };

  const auto add = [&](std::string name, core::AttrValue value, util::SimTime stime,
                       util::SimTime etime) {
    core::Attribute a;
    a.name = std::move(name);
    a.value = std::move(value);
    a.stime = stime;
    a.etime = etime;
    a.utime = utime_for(a.name, a.value);
    attrs.add(std::move(a));
  };

  add(core::kAttrNetAddr, core::AttrValue::of(util::to_string(conn_addr)),
      util::kNullTime, util::kNullTime);
  add(core::kAttrVersion, core::AttrValue::of_number(client_version),
      util::kNullTime, util::kNullTime);

  if (geo_ != nullptr) {
    const geo::GeoInfo info = geo_->lookup(conn_addr);
    add(core::kAttrRegion, core::AttrValue::of_number(info.region),
        util::kNullTime, util::kNullTime);
    add(core::kAttrAs, core::AttrValue::of_number(info.as_number),
        util::kNullTime, util::kNullTime);
  }

  for (const SubscriptionGrant& grant : account.subscriptions) {
    // Skip grants that already ended; keep future ones (stime forward).
    if (grant.etime != util::kNullTime && grant.etime < now) continue;
    add(core::kAttrSubscription, core::AttrValue::of(grant.package), grant.stime,
        grant.etime);
  }
  return attrs;
}

}  // namespace p2pdrm::services
