// Channel Policy Manager (§IV-A).
//
// The administrative hub for digital rights: it owns the Channel List
// (every channel with its attributes and policies) and the Channel
// Attribute List (the unique attributes collated from all channels, with
// last-update times). Every administrative change bumps the relevant
// utimes, pushes the Channel List to the Channel Managers and the Channel
// Attribute List to the User Managers; the utimes then flow into User
// Tickets, which is how clients learn to refetch the Channel List.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/messages.h"
#include "core/policy.h"
#include "crypto/rsa.h"

namespace p2pdrm::services {

class ChannelPolicyManager {
 public:
  using ChannelListSink = std::function<void(const std::vector<core::ChannelRecord>&)>;
  using AttributeListSink = std::function<void(const core::AttributeSet&)>;

  /// `um_public_key` verifies User Tickets on channel-list fetches.
  explicit ChannelPolicyManager(crypto::RsaPublicKey um_public_key);

  // --- administrative operations (each pushes updates) ---

  /// Add a channel (throws std::invalid_argument on duplicate id).
  void add_channel(core::ChannelRecord channel, util::SimTime now);
  /// Remove a channel; returns false if unknown.
  bool remove_channel(util::ChannelId id, util::SimTime now);
  /// Add an attribute to a channel (throws on unknown channel).
  void add_channel_attribute(util::ChannelId id, core::Attribute attr, util::SimTime now);
  /// Remove attributes by name from a channel; returns count removed.
  std::size_t remove_channel_attribute(util::ChannelId id, const std::string& name,
                                       util::SimTime now);
  /// Replace a channel's policies (throws on unknown channel).
  void set_policies(util::ChannelId id, std::vector<core::Policy> policies,
                    util::SimTime now);
  /// Add one policy (throws on unknown channel).
  void add_policy(util::ChannelId id, core::Policy policy, util::SimTime now);

  /// Black out a channel for [start, end] (§IV-A's worked example): adds a
  /// Region=ANY attribute valid over the window plus a higher-priority
  /// REJECT policy matching it.
  void blackout(util::ChannelId id, util::SimTime start, util::SimTime end,
                util::SimTime now, std::uint32_t priority = 100);

  /// Make [start, end] of a channel a pay-per-view program sold as
  /// `package` (§II: PPV purchases happen out-of-band at the Account
  /// Manager; a purchase is a Subscription grant for `package`). During the
  /// window, everyone is rejected (priority `priority`) except holders of
  /// the package (priority `priority`+1); outside it, the channel's
  /// ordinary policies apply untouched.
  void add_ppv_program(util::ChannelId id, const std::string& package,
                       util::SimTime start, util::SimTime end, util::SimTime now,
                       std::uint32_t priority = 100);

  // --- subscriptions (push targets) ---

  void add_channel_list_sink(ChannelListSink sink);
  void add_attribute_list_sink(AttributeListSink sink);

  /// Register partition coordinates returned to clients with channel lists.
  void set_partition_info(core::PartitionInfo info);

  // --- client-facing ---

  core::ChannelListResponse handle_channel_list(const core::ChannelListRequest& req,
                                                util::SimTime now) const;

  // --- introspection ---

  const std::vector<core::ChannelRecord> channel_list() const;
  const core::AttributeSet& channel_attribute_list() const { return attr_list_; }
  const core::ChannelRecord* find_channel(util::ChannelId id) const;

 private:
  void rebuild_attribute_list(const core::ChannelRecord* touched);
  void touch_channel(core::ChannelRecord& channel, util::SimTime now);
  void push_updates();

  crypto::RsaPublicKey um_public_key_;
  std::map<util::ChannelId, core::ChannelRecord> channels_;
  core::AttributeSet attr_list_;
  std::vector<ChannelListSink> channel_list_sinks_;
  std::vector<AttributeListSink> attribute_list_sinks_;
  std::vector<core::PartitionInfo> partitions_;
};

}  // namespace p2pdrm::services
