#include "services/channel_server.h"

#include <stdexcept>

namespace p2pdrm::services {

ChannelServer::ChannelServer(ChannelServerConfig config, crypto::SecureRandom rng,
                             util::SimTime start)
    : config_(config), rng_(std::move(rng)) {
  if (config_.rekey_interval <= 0) {
    throw std::invalid_argument("ChannelServer: rekey_interval must be positive");
  }
  if (config_.key_history < 1) {
    throw std::invalid_argument("ChannelServer: key_history must be >= 1");
  }
  mint_key(start);  // key active immediately at startup
}

void ChannelServer::mint_key(util::SimTime activation) {
  keys_.push_back(core::generate_content_key(rng_, next_serial_, activation));
  next_serial_ = static_cast<std::uint8_t>(next_serial_ + 1);  // wraps mod 256
  ++keys_minted_;
  while (keys_.size() > config_.key_history) keys_.pop_front();
}

std::vector<core::ContentKey> ChannelServer::advance(util::SimTime now) {
  std::vector<core::ContentKey> minted;
  // Mint the next key once we are within announce_lead of its activation.
  while (keys_.back().activation + config_.rekey_interval - config_.announce_lead <=
         now) {
    mint_key(keys_.back().activation + config_.rekey_interval);
    minted.push_back(keys_.back());
  }
  return minted;
}

const core::ContentKey& ChannelServer::active_key(util::SimTime now) const {
  // Newest key whose activation is <= now (there is always one: the key
  // minted at construction activates at start).
  for (auto it = keys_.rbegin(); it != keys_.rend(); ++it) {
    if (it->activation <= now) return *it;
  }
  return keys_.front();
}

core::ContentPacket ChannelServer::produce(util::BytesView payload, util::SimTime now) {
  if (!config_.encrypt) {
    core::ContentPacket p;
    p.channel = config_.channel;
    p.key_serial = 0;
    p.seq = next_seq_++;
    p.payload.assign(payload.begin(), payload.end());
    return p;
  }
  return core::encrypt_packet(active_key(now), config_.channel, next_seq_++, payload);
}

std::optional<core::ContentKey> ChannelServer::key_by_serial(std::uint8_t serial) const {
  for (const core::ContentKey& k : keys_) {
    if (k.serial == serial) return k;
  }
  return std::nullopt;
}

}  // namespace p2pdrm::services
