// Operational counters for the manager farms. Aggregated in the shared
// domain/partition state, so a farm of instances reports as one logical
// manager (§V) — what an operator's dashboard would scrape.
//
// A thin facade over an obs::Registry counter family: each DrmError outcome
// is one labelled member of the "ops" family ("ops{ok}",
// "ops{access-denied}", ...), so the same counts the legacy accessors
// expose are also scrapeable through the registry's uniform rendering.
#pragma once

#include <cstdint>
#include <string>

#include "core/messages.h"
#include "obs/registry.h"

namespace p2pdrm::services {

class OpsCounters {
 public:
  void record(core::DrmError outcome) {
    registry_.counter("ops.total").inc();
    registry_.counter("ops", std::string(core::to_string(outcome))).inc();
  }

  std::uint64_t total() const {
    const obs::Counter* c = registry_.find_counter("ops.total");
    return c == nullptr ? 0 : c->value();
  }
  std::uint64_t count(core::DrmError outcome) const;
  std::uint64_t successes() const { return count(core::DrmError::kOk); }

  // --- content-key rotation pipeline (§IV) ---

  /// The channel server minted a key epoch.
  void record_rotation_issued() { registry_.counter("keys.rotations_issued").inc(); }
  /// A peer installed a rotated epoch it received over the overlay.
  void record_epoch_delivered() { registry_.counter("keys.epochs_delivered").inc(); }
  /// A peer installed an epoch `staleness_us` after its activation — it was
  /// decrypting with the previous key until then. Keeps the running max
  /// (atomically: concurrent deliveries race for the high-water mark).
  void note_key_staleness(std::int64_t staleness_us) {
    registry_.gauge("keys.max_staleness_us").set_max(staleness_us);
  }

  std::uint64_t rotations_issued() const {
    const obs::Counter* c = registry_.find_counter("keys.rotations_issued");
    return c == nullptr ? 0 : c->value();
  }
  std::uint64_t epochs_delivered() const {
    const obs::Counter* c = registry_.find_counter("keys.epochs_delivered");
    return c == nullptr ? 0 : c->value();
  }
  std::int64_t max_key_staleness_us() const {
    const obs::Gauge* g = registry_.find_gauge("keys.max_staleness_us");
    return g == nullptr ? 0 : g->value();
  }
  double success_rate() const {
    const std::uint64_t n = total();
    return n == 0 ? 0.0
                  : static_cast<double>(successes()) / static_cast<double>(n);
  }

  /// Fold another instance's counts into this one. Farm aggregation: after
  /// a crash/restart cycle each instance carries its own partial counts and
  /// the dashboard (or the resilience report) merges them per farm.
  void merge(const OpsCounters& other);

  /// Zero every counter (an instance restarting with fresh state).
  void reset() { registry_.reset(); }

  /// "ok=120 access-denied=3 ticket-expired=1" style rendering, outcomes in
  /// enum order, zero counts omitted. Nonzero key-rotation counters append
  /// as "rotations-issued=", "epochs-delivered=", "max-key-staleness-us=".
  std::string to_string() const;

  /// The backing registry, for callers that want the uniform rendering or
  /// the family view ("ops{<outcome>}" counters plus "ops.total").
  const obs::Registry& registry() const { return registry_; }

 private:
  /// Held by value: OpsCounters lives inside copyable report structs.
  obs::Registry registry_;
};

}  // namespace p2pdrm::services
