// Operational counters for the manager farms. Aggregated in the shared
// domain/partition state, so a farm of instances reports as one logical
// manager (§V) — what an operator's dashboard would scrape.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/messages.h"

namespace p2pdrm::services {

class OpsCounters {
 public:
  void record(core::DrmError outcome) {
    ++total_;
    ++by_outcome_[outcome];
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t count(core::DrmError outcome) const {
    const auto it = by_outcome_.find(outcome);
    return it == by_outcome_.end() ? 0 : it->second;
  }
  std::uint64_t successes() const { return count(core::DrmError::kOk); }
  double success_rate() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(successes()) / static_cast<double>(total_);
  }

  /// Fold another instance's counts into this one. Farm aggregation: after
  /// a crash/restart cycle each instance carries its own partial counts and
  /// the dashboard (or the resilience report) merges them per farm.
  void merge(const OpsCounters& other);

  /// Zero every counter (an instance restarting with fresh state).
  void reset();

  /// "ok=120 access-denied=3 ticket-expired=1" style rendering.
  std::string to_string() const;

 private:
  std::uint64_t total_ = 0;
  std::map<core::DrmError, std::uint64_t> by_outcome_;
};

}  // namespace p2pdrm::services
