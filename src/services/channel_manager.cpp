#include "services/channel_manager.h"

#include "crypto/sha256.h"

namespace p2pdrm::services {

using core::DrmError;

void ViewingLog::record(const Entry& entry) {
  audit_.push_back(entry);
  if (!entry.renewal) {
    // Move-forward-only merge: replicas may apply the same entries in
    // different cross-origin interleavings; taking the max entry time (ties
    // to the later arrival, preserving single-stream last-writer-wins)
    // makes the renewal index converge regardless of order.
    const auto key = std::make_pair(entry.user_in, entry.channel);
    const auto it = latest_.find(key);
    if (it == latest_.end() || entry.time >= it->second.time) {
      latest_[key] = entry;
    }
  }
  maybe_rotate();
}

const ViewingLog::Entry* ViewingLog::latest(util::UserIN user,
                                            util::ChannelId channel) const {
  const auto it = latest_.find({user, channel});
  return it == latest_.end() ? nullptr : &it->second;
}

void ViewingLog::set_audit_cap(std::size_t cap) {
  audit_cap_ = cap;
  maybe_rotate();
}

bool ViewingLog::is_live_latest(const Entry& e) const {
  if (e.renewal) return false;
  const auto it = latest_.find({e.user_in, e.channel});
  return it != latest_.end() && it->second.time == e.time &&
         it->second.addr == e.addr;
}

void ViewingLog::maybe_rotate() {
  if (audit_cap_ == 0 || audit_.size() <= audit_cap_) return;
  // Hysteresis: shrink to half the cap so rotation is amortized, never
  // evicting an entry the renewal index still points at.
  std::size_t to_evict = audit_.size() - audit_cap_ / 2;
  std::vector<Entry> kept;
  kept.reserve(audit_cap_);
  for (const Entry& e : audit_) {
    if (to_evict > 0 && !is_live_latest(e)) {
      ++rotated_count_;
      if (!e.renewal) ++rotated_views_[e.channel];
      --to_evict;
    } else {
      kept.push_back(e);
    }
  }
  audit_.swap(kept);
}

std::map<util::ChannelId, std::size_t> ViewingLog::views_per_channel() const {
  std::map<util::ChannelId, std::size_t> out;
  for (const auto& [channel, count] : rotated_views_) {
    out[channel] += static_cast<std::size_t>(count);
  }
  for (const Entry& e : audit_) {
    if (!e.renewal) ++out[e.channel];
  }
  return out;
}

util::Bytes ViewingLog::encode() const {
  util::WireWriter w;
  w.u64(audit_.size());
  for (const Entry& e : audit_) {
    w.u64(e.user_in);
    w.u32(e.channel);
    w.u32(e.addr.ip);
    w.i64(e.time);
    w.u8(e.renewal ? 1 : 0);
  }
  w.u64(rotated_count_);
  w.u32(static_cast<std::uint32_t>(rotated_views_.size()));
  for (const auto& [channel, count] : rotated_views_) {
    w.u32(channel);
    w.u64(count);
  }
  return w.take();
}

ViewingLog ViewingLog::decode(util::BytesView data) {
  util::WireReader r(data);
  const std::uint64_t count = r.u64();
  // 25 bytes per entry: reject length prefixes the input cannot back.
  if (count > data.size() / 25) throw util::WireError("ViewingLog: implausible count");
  ViewingLog log;
  for (std::uint64_t i = 0; i < count; ++i) {
    Entry e;
    e.user_in = r.u64();
    e.channel = r.u32();
    e.addr.ip = r.u32();
    e.time = r.i64();
    const std::uint8_t renewal = r.u8();
    if (renewal > 1) throw util::WireError("ViewingLog: bad renewal flag");
    e.renewal = renewal == 1;
    log.record(e);  // rebuilds the latest-entry index as a side effect
  }
  log.rotated_count_ = r.u64();
  const std::uint32_t agg_count = r.u32();
  // 12 bytes per aggregate: same implausible-length guard as for entries.
  if (agg_count > r.remaining() / 12) {
    throw util::WireError("ViewingLog: implausible aggregate count");
  }
  std::uint64_t agg_sum = 0;
  for (std::uint32_t i = 0; i < agg_count; ++i) {
    const util::ChannelId channel = r.u32();
    const std::uint64_t views = r.u64();
    if (views == 0) throw util::WireError("ViewingLog: empty aggregate");
    if (!log.rotated_views_.emplace(channel, views).second) {
      throw util::WireError("ViewingLog: duplicate aggregate channel");
    }
    agg_sum += views;
  }
  if (agg_sum > log.rotated_count_) {
    throw util::WireError("ViewingLog: aggregates exceed rotated count");
  }
  if (!r.at_end()) throw util::WireError("ViewingLog: trailing bytes");
  return log;
}

ChannelManager::ChannelManager(std::shared_ptr<ChannelManagerPartition> partition,
                               PeerDirectory* peers, crypto::SecureRandom rng)
    : partition_(std::move(partition)), log_(&partition_->log), peers_(peers),
      rng_(std::move(rng)) {}

void ChannelManager::use_local_log(ViewingLog* log) {
  log_ = log != nullptr ? log : &partition_->log;
}

void ChannelManager::update_channel_list(const std::vector<core::ChannelRecord>& list) {
  partition_->channels.clear();
  for (const core::ChannelRecord& c : list) {
    if (c.partition == partition_->config.partition) partition_->channels.emplace(c.id, c);
  }
}

util::Bytes ChannelManager::switch_binding(const util::Bytes& user_ticket_bytes,
                                           util::ChannelId channel_id,
                                           const util::Bytes& expiring_bytes) const {
  // Bind the challenge to the digest of the exact request pieces so a
  // challenge minted for one (user, channel) pair cannot serve another.
  util::WireWriter w;
  w.bytes(crypto::sha256_bytes(user_ticket_bytes));
  w.u32(channel_id);
  w.bytes(crypto::sha256_bytes(expiring_bytes));
  return w.take();
}

std::optional<DrmError> ChannelManager::validate(const util::Bytes& user_ticket_bytes,
                                                 util::ChannelId channel_id,
                                                 const util::Bytes& expiring_bytes,
                                                 util::NetAddr conn_addr,
                                                 util::SimTime now,
                                                 ValidatedRequest& out) const {
  try {
    out.user_ticket = core::SignedUserTicket::decode(user_ticket_bytes);
  } catch (const util::WireError&) {
    return DrmError::kBadTicket;
  }
  if (!out.user_ticket.verify(partition_->um_public_key)) return DrmError::kBadTicket;
  if (out.user_ticket.ticket.expired_at(now)) return DrmError::kTicketExpired;

  // The NetAddr attribute in the User Ticket must match the address the
  // request actually came from (§IV-C).
  if (!out.user_ticket.ticket.attributes.matches(
          core::kAttrNetAddr, core::AttrValue::of(util::to_string(conn_addr)), now)) {
    return DrmError::kAddressMismatch;
  }

  if (!expiring_bytes.empty()) {
    // Renewal: the expiring Channel Ticket stands in for the channel id.
    core::SignedChannelTicket expiring;
    try {
      expiring = core::SignedChannelTicket::decode(expiring_bytes);
    } catch (const util::WireError&) {
      return DrmError::kBadTicket;
    }
    if (!expiring.verify(partition_->keys.pub)) return DrmError::kBadTicket;
    if (expiring.ticket.user_in != out.user_ticket.ticket.user_in) {
      return DrmError::kBadTicket;
    }
    if (expiring.ticket.net_addr != conn_addr) return DrmError::kAddressMismatch;
    out.channel_id = expiring.ticket.channel_id;
    out.expiring = std::move(expiring);
  } else {
    out.channel_id = channel_id;
  }

  const auto ch_it = partition_->channels.find(out.channel_id);
  if (ch_it == partition_->channels.end()) return DrmError::kUnknownChannel;
  out.channel = &ch_it->second;
  return std::nullopt;
}

core::Switch1Response ChannelManager::do_switch1(const core::Switch1Request& req,
                                                     util::NetAddr conn_addr,
                                                     util::SimTime now) {
  core::Switch1Response resp;
  ValidatedRequest validated;
  if (const auto err = validate(req.user_ticket, req.channel_id, req.expiring_ticket,
                                conn_addr, now, validated)) {
    resp.error = *err;
    return resp;
  }
  const util::Bytes nonce = rng_.bytes(core::kNonceSize);
  resp.challenge = core::make_challenge(
      partition_->farm_secret, "switch",
      switch_binding(req.user_ticket, req.channel_id, req.expiring_ticket), nonce, now);
  return resp;
}

core::Switch2Response ChannelManager::do_switch2(const core::Switch2Request& req,
                                                     util::NetAddr conn_addr,
                                                     util::SimTime now) {
  core::Switch2Response resp;
  ValidatedRequest validated;
  if (const auto err = validate(req.user_ticket, req.channel_id, req.expiring_ticket,
                                conn_addr, now, validated)) {
    resp.error = *err;
    return resp;
  }

  if (!core::verify_challenge(
          req.challenge, partition_->farm_secret, "switch",
          switch_binding(req.user_ticket, req.channel_id, req.expiring_ticket), now,
          partition_->config.challenge_lifetime)) {
    resp.error = DrmError::kChallengeInvalid;
    return resp;
  }

  // Proof of possession of the private key certified in the User Ticket.
  if (!crypto::rsa_verify(validated.user_ticket.ticket.client_public_key,
                          req.challenge.nonce, req.proof)) {
    resp.error = DrmError::kBadCredentials;
    return resp;
  }

  // Policy evaluation over the user attributes carried by the User Ticket.
  const core::EvalResult eval = core::evaluate_policies(
      *validated.channel, validated.user_ticket.ticket.attributes, now);
  if (eval.decision != core::AccessDecision::kAccept) {
    resp.error = DrmError::kAccessDenied;
    return resp;
  }

  const util::UserIN user_in = validated.user_ticket.ticket.user_in;
  core::ChannelTicket ticket;
  ticket.user_in = user_in;
  ticket.channel_id = validated.channel->id;
  ticket.client_public_key = validated.user_ticket.ticket.client_public_key;
  ticket.net_addr = conn_addr;

  if (validated.expiring) {
    const core::ChannelTicket& old_ticket = validated.expiring->ticket;

    // Renewal only near the old ticket's expiry (§IV-D).
    if (now < old_ticket.expiry_time - partition_->config.renewal_window ||
        now > old_ticket.expiry_time + partition_->config.renewal_window) {
      resp.error = DrmError::kRenewalRefused;
      return resp;
    }

    // One-session rule: the latest fresh-issue log entry for (user, channel)
    // must carry this same address; if the account moved to a new machine,
    // the newer entry wins and this renewal is refused.
    const ViewingLog::Entry* latest = log_->latest(user_in, old_ticket.channel_id);
    if (latest == nullptr || latest->addr != conn_addr ||
        latest->addr != old_ticket.net_addr) {
      resp.error = DrmError::kRenewalRefused;
      return resp;
    }

    ticket.renewal = true;
    ticket.start_time = old_ticket.start_time;
    ticket.expiry_time = old_ticket.expiry_time + partition_->config.ticket_lifetime;
  } else {
    ticket.renewal = false;
    ticket.start_time = now;
    ticket.expiry_time = now + partition_->config.ticket_lifetime;
  }

  // A Channel Ticket can never outlive the client's User Ticket (§IV-C) —
  // this lower-bounds the lead time for deploying new viewing policies.
  ticket.expiry_time =
      std::min(ticket.expiry_time, validated.user_ticket.ticket.expiry_time);
  if (ticket.expiry_time <= now) {
    resp.error = DrmError::kTicketExpired;
    return resp;
  }

  resp.ticket = core::SignedChannelTicket::sign(ticket, partition_->keys.priv);
  const ViewingLog::Entry entry{user_in, ticket.channel_id, conn_addr, now,
                                ticket.renewal};
  log_->record(entry);
  if (viewing_sink_) viewing_sink_(entry);

  if (peers_ != nullptr) {
    resp.peers = peers_->sample_peers(ticket.channel_id,
                                      partition_->config.peer_list_size, conn_addr);
  }
  return resp;
}

core::Switch1Response ChannelManager::handle_switch1(const core::Switch1Request& req,
                                                      util::NetAddr conn_addr,
                                                      util::SimTime now) {
  core::Switch1Response resp = do_switch1(req, conn_addr, now);
  partition_->switch1_stats.record(resp.error);
  return resp;
}

core::Switch2Response ChannelManager::handle_switch2(const core::Switch2Request& req,
                                                     util::NetAddr conn_addr,
                                                     util::SimTime now) {
  core::Switch2Response resp = do_switch2(req, conn_addr, now);
  partition_->switch2_stats.record(resp.error);
  return resp;
}

}  // namespace p2pdrm::services
