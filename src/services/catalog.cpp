#include "services/catalog.h"

#include <charconv>
#include <sstream>

namespace p2pdrm::services {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Pop the next space-delimited token.
std::string_view next_token(std::string_view& rest) {
  rest = trim(rest);
  const std::size_t space = rest.find(' ');
  std::string_view token = rest.substr(0, space);
  rest = space == std::string_view::npos ? std::string_view{} : rest.substr(space + 1);
  return token;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_i64(std::string_view s, std::int64_t& out) {
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

std::optional<core::AttrValue> parse_catalog_value(std::string_view s) {
  if (s == "ANY") return core::AttrValue::any();
  if (s == "ALL") return core::AttrValue::all();
  if (s == "NONE") return core::AttrValue::none();
  if (s == "NULL") return core::AttrValue::null();
  if (s.empty()) return std::nullopt;
  return core::AttrValue::of(std::string(s));
}

}  // namespace

core::ChannelRecord make_regional_channel(util::ChannelId id, const std::string& name,
                                          geo::RegionId region,
                                          std::uint32_t partition) {
  core::ChannelRecord c;
  c.id = id;
  c.name = name;
  c.partition = partition;
  core::Attribute region_attr;
  region_attr.name = core::kAttrRegion;
  region_attr.value = core::AttrValue::of_number(region);
  c.attributes.add(std::move(region_attr));
  core::Policy accept;
  accept.priority = 50;
  accept.terms.push_back({core::kAttrRegion, core::AttrValue::of_number(region)});
  accept.action = core::PolicyAction::kAccept;
  c.policies.push_back(std::move(accept));
  return c;
}

core::ChannelRecord make_subscription_channel(util::ChannelId id,
                                              const std::string& name,
                                              geo::RegionId region,
                                              const std::string& package,
                                              std::uint32_t partition) {
  core::ChannelRecord c = make_regional_channel(id, name, region, partition);
  c.policies.clear();
  core::Attribute sub_attr;
  sub_attr.name = core::kAttrSubscription;
  sub_attr.value = core::AttrValue::of(package);
  c.attributes.add(std::move(sub_attr));
  core::Policy accept;
  accept.priority = 50;
  accept.terms.push_back({core::kAttrRegion, core::AttrValue::of_number(region)});
  accept.terms.push_back({core::kAttrSubscription, core::AttrValue::of(package)});
  accept.action = core::PolicyAction::kAccept;
  c.policies.push_back(std::move(accept));
  return c;
}

CatalogParseResult parse_catalog(std::string_view text) {
  CatalogParseResult result;
  core::ChannelRecord* current = nullptr;
  int line_no = 0;

  std::istringstream lines{std::string(text)};
  std::string raw_line;
  const auto fail = [&](const std::string& what) {
    result.error = "line " + std::to_string(line_no) + ": " + what;
    result.channels.clear();
    return result;
  };

  while (std::getline(lines, raw_line)) {
    ++line_no;
    std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    std::string_view rest = line;
    const std::string_view keyword = next_token(rest);

    if (keyword == "channel") {
      // channel <id> "<name>" [partition <p>]
      std::uint64_t id = 0;
      if (!parse_u64(next_token(rest), id)) return fail("bad channel id");
      rest = trim(rest);
      if (rest.empty() || rest.front() != '"') return fail("expected quoted name");
      rest.remove_prefix(1);
      const std::size_t close = rest.find('"');
      if (close == std::string_view::npos) return fail("unterminated name");
      core::ChannelRecord channel;
      channel.id = static_cast<util::ChannelId>(id);
      channel.name = std::string(rest.substr(0, close));
      rest = trim(rest.substr(close + 1));
      if (!rest.empty()) {
        if (next_token(rest) != "partition") return fail("expected 'partition'");
        std::uint64_t partition = 0;
        if (!parse_u64(next_token(rest), partition)) return fail("bad partition");
        channel.partition = static_cast<std::uint32_t>(partition);
      }
      for (const core::ChannelRecord& existing : result.channels) {
        if (existing.id == channel.id) return fail("duplicate channel id");
      }
      result.channels.push_back(std::move(channel));
      current = &result.channels.back();
      continue;
    }

    if (keyword == "attribute") {
      // attribute <Name>=<Value> [stime=<us>] [etime=<us>]
      if (current == nullptr) return fail("attribute before any channel");
      const std::string_view spec = next_token(rest);
      const std::size_t eq = spec.find('=');
      if (eq == std::string_view::npos || eq == 0) return fail("expected Name=Value");
      core::Attribute attr;
      attr.name = std::string(spec.substr(0, eq));
      const auto value = parse_catalog_value(spec.substr(eq + 1));
      if (!value) return fail("bad attribute value");
      attr.value = *value;
      while (!trim(rest).empty()) {
        const std::string_view bound = next_token(rest);
        std::int64_t when = 0;
        if (bound.starts_with("stime=") && parse_i64(bound.substr(6), when)) {
          attr.stime = when;
        } else if (bound.starts_with("etime=") && parse_i64(bound.substr(6), when)) {
          attr.etime = when;
        } else {
          return fail("bad attribute bound '" + std::string(bound) + "'");
        }
      }
      current->attributes.add(std::move(attr));
      continue;
    }

    if (keyword == "policy") {
      if (current == nullptr) return fail("policy before any channel");
      const auto policy = core::parse_policy(rest);
      if (!policy) return fail("unparseable policy '" + std::string(rest) + "'");
      current->policies.push_back(*policy);
      continue;
    }

    return fail("unknown keyword '" + std::string(keyword) + "'");
  }
  return result;
}

}  // namespace p2pdrm::services
