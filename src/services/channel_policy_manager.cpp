#include "services/channel_policy_manager.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace p2pdrm::services {

using core::DrmError;

ChannelPolicyManager::ChannelPolicyManager(crypto::RsaPublicKey um_public_key)
    : um_public_key_(std::move(um_public_key)) {}

void ChannelPolicyManager::add_channel(core::ChannelRecord channel, util::SimTime now) {
  if (channels_.contains(channel.id)) {
    throw std::invalid_argument("ChannelPolicyManager: duplicate channel id " +
                                std::to_string(channel.id));
  }
  auto& stored = channels_.emplace(channel.id, std::move(channel)).first->second;
  touch_channel(stored, now);
  rebuild_attribute_list(&stored);
  push_updates();
}

bool ChannelPolicyManager::remove_channel(util::ChannelId id, util::SimTime now) {
  const auto it = channels_.find(id);
  if (it == channels_.end()) return false;
  // Capture the attributes being retired so their collated entries get a
  // fresh utime ("if a channel is added or deleted from the offering of
  // region X, the Region=X attribute has its last-update time made current").
  core::ChannelRecord removed = std::move(it->second);
  channels_.erase(it);
  touch_channel(removed, now);
  rebuild_attribute_list(&removed);
  push_updates();
  return true;
}

void ChannelPolicyManager::add_channel_attribute(util::ChannelId id, core::Attribute attr,
                                                 util::SimTime now) {
  const auto it = channels_.find(id);
  if (it == channels_.end()) {
    throw std::invalid_argument("ChannelPolicyManager: unknown channel");
  }
  it->second.attributes.add(std::move(attr));
  touch_channel(it->second, now);
  rebuild_attribute_list(&it->second);
  push_updates();
}

std::size_t ChannelPolicyManager::remove_channel_attribute(util::ChannelId id,
                                                           const std::string& name,
                                                           util::SimTime now) {
  const auto it = channels_.find(id);
  if (it == channels_.end()) return 0;
  core::ChannelRecord before = it->second;  // retired attrs need utime bumps
  const std::size_t removed = it->second.attributes.remove_all(name);
  if (removed > 0) {
    touch_channel(before, now);
    touch_channel(it->second, now);
    rebuild_attribute_list(&before);
    push_updates();
  }
  return removed;
}

void ChannelPolicyManager::set_policies(util::ChannelId id,
                                        std::vector<core::Policy> policies,
                                        util::SimTime now) {
  const auto it = channels_.find(id);
  if (it == channels_.end()) {
    throw std::invalid_argument("ChannelPolicyManager: unknown channel");
  }
  it->second.policies = std::move(policies);
  touch_channel(it->second, now);
  rebuild_attribute_list(&it->second);
  push_updates();
}

void ChannelPolicyManager::add_policy(util::ChannelId id, core::Policy policy,
                                      util::SimTime now) {
  const auto it = channels_.find(id);
  if (it == channels_.end()) {
    throw std::invalid_argument("ChannelPolicyManager: unknown channel");
  }
  it->second.policies.push_back(std::move(policy));
  touch_channel(it->second, now);
  rebuild_attribute_list(&it->second);
  push_updates();
}

void ChannelPolicyManager::blackout(util::ChannelId id, util::SimTime start,
                                    util::SimTime end, util::SimTime now,
                                    std::uint32_t priority) {
  const auto it = channels_.find(id);
  if (it == channels_.end()) {
    throw std::invalid_argument("ChannelPolicyManager: unknown channel");
  }
  // §IV-A worked example: a Region=ANY attribute active over the blackout
  // window grounds a high-priority REJECT policy; every user's concrete
  // Region matches ANY, so nobody passes while the window is active.
  core::Attribute any_region;
  any_region.name = core::kAttrRegion;
  any_region.value = core::AttrValue::any();
  any_region.stime = start;
  any_region.etime = end;
  it->second.attributes.add(std::move(any_region));

  core::Policy reject;
  reject.priority = priority;
  reject.terms.push_back({core::kAttrRegion, core::AttrValue::any()});
  reject.action = core::PolicyAction::kReject;
  it->second.policies.push_back(std::move(reject));

  touch_channel(it->second, now);
  rebuild_attribute_list(&it->second);
  push_updates();
}

void ChannelPolicyManager::add_ppv_program(util::ChannelId id, const std::string& package,
                                           util::SimTime start, util::SimTime end,
                                           util::SimTime now, std::uint32_t priority) {
  const auto it = channels_.find(id);
  if (it == channels_.end()) {
    throw std::invalid_argument("ChannelPolicyManager: unknown channel");
  }
  // Windowed blanket REJECT (same construction as a blackout)...
  core::Attribute any_region;
  any_region.name = core::kAttrRegion;
  any_region.value = core::AttrValue::any();
  any_region.stime = start;
  any_region.etime = end;
  it->second.attributes.add(std::move(any_region));
  core::Policy reject;
  reject.priority = priority;
  reject.terms.push_back({core::kAttrRegion, core::AttrValue::any()});
  reject.action = core::PolicyAction::kReject;
  it->second.policies.push_back(std::move(reject));

  // ...overridden for purchasers of the program's package.
  core::Attribute ppv;
  ppv.name = core::kAttrSubscription;
  ppv.value = core::AttrValue::of(package);
  ppv.stime = start;
  ppv.etime = end;
  it->second.attributes.add(std::move(ppv));
  core::Policy accept;
  accept.priority = priority + 1;
  accept.terms.push_back({core::kAttrSubscription, core::AttrValue::of(package)});
  accept.action = core::PolicyAction::kAccept;
  it->second.policies.push_back(std::move(accept));

  touch_channel(it->second, now);
  rebuild_attribute_list(&it->second);
  push_updates();
}

void ChannelPolicyManager::add_channel_list_sink(ChannelListSink sink) {
  channel_list_sinks_.push_back(std::move(sink));
  channel_list_sinks_.back()(channel_list());
}

void ChannelPolicyManager::add_attribute_list_sink(AttributeListSink sink) {
  attribute_list_sinks_.push_back(std::move(sink));
  attribute_list_sinks_.back()(attr_list_);
}

void ChannelPolicyManager::set_partition_info(core::PartitionInfo info) {
  std::erase_if(partitions_, [&](const core::PartitionInfo& p) {
    return p.partition == info.partition;
  });
  partitions_.push_back(std::move(info));
  push_updates();
}

core::ChannelListResponse ChannelPolicyManager::handle_channel_list(
    const core::ChannelListRequest& req, util::SimTime now) const {
  core::ChannelListResponse resp;

  core::SignedUserTicket ticket;
  try {
    ticket = core::SignedUserTicket::decode(req.user_ticket);
  } catch (const util::WireError&) {
    resp.error = DrmError::kBadTicket;
    return resp;
  }
  if (!ticket.verify(um_public_key_)) {
    resp.error = DrmError::kBadTicket;
    return resp;
  }
  if (ticket.ticket.expired_at(now)) {
    resp.error = DrmError::kTicketExpired;
    return resp;
  }

  const std::set<std::string> wanted(req.stale_attributes.begin(),
                                     req.stale_attributes.end());
  for (const auto& [id, channel] : channels_) {
    if (wanted.empty()) {
      resp.channels.push_back(channel);
      continue;
    }
    const bool relevant = std::any_of(
        channel.attributes.items().begin(), channel.attributes.items().end(),
        [&](const core::Attribute& a) { return wanted.contains(a.name); });
    if (relevant) resp.channels.push_back(channel);
  }
  resp.partitions = partitions_;
  return resp;
}

const std::vector<core::ChannelRecord> ChannelPolicyManager::channel_list() const {
  std::vector<core::ChannelRecord> out;
  out.reserve(channels_.size());
  for (const auto& [id, channel] : channels_) out.push_back(channel);
  return out;
}

const core::ChannelRecord* ChannelPolicyManager::find_channel(util::ChannelId id) const {
  const auto it = channels_.find(id);
  return it == channels_.end() ? nullptr : &it->second;
}

void ChannelPolicyManager::touch_channel(core::ChannelRecord& channel,
                                         util::SimTime now) {
  // "Whenever a channel is modified, all its attributes' last update times
  // are updated to the current time."
  core::AttributeSet touched;
  for (core::Attribute a : channel.attributes.items()) {
    a.utime = now;
    touched.add(std::move(a));
  }
  channel.attributes = std::move(touched);
}

void ChannelPolicyManager::rebuild_attribute_list(const core::ChannelRecord* touched) {
  // Collate unique (name, value) pairs across all channels; an entry's utime
  // is the newest utime among the channel attributes it represents. Entries
  // belonging only to a just-removed channel are kept implicitly through the
  // `touched` record so their staleness propagates once.
  std::vector<core::Attribute> collated;

  const auto merge = [&](const core::Attribute& a) {
    for (core::Attribute& existing : collated) {
      if (existing.name == a.name && existing.value == a.value) {
        if (a.utime != util::kNullTime &&
            (existing.utime == util::kNullTime || a.utime > existing.utime)) {
          existing.utime = a.utime;
        }
        return;
      }
    }
    core::Attribute entry;
    entry.name = a.name;
    entry.value = a.value;
    entry.utime = a.utime;
    collated.push_back(std::move(entry));
  };

  for (const auto& [id, channel] : channels_) {
    for (const core::Attribute& a : channel.attributes.items()) merge(a);
  }
  if (touched != nullptr) {
    for (const core::Attribute& a : touched->attributes.items()) merge(a);
  }
  attr_list_ = core::AttributeSet(std::move(collated));
}

void ChannelPolicyManager::push_updates() {
  const auto list = channel_list();
  for (const auto& sink : channel_list_sinks_) sink(list);
  for (const auto& sink : attribute_list_sinks_) sink(attr_list_);
}

}  // namespace p2pdrm::services
