// Redirection Manager (§V).
//
// Bootstraps clients into the right Authentication Domain: one hash-table
// lookup from the user's email to the User Manager the user is assigned to,
// plus the coordinates (address + public key) of the Channel Policy
// Manager. Its own address and public key are baked into the client binary;
// it is the only well-known entry point of the whole service.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "crypto/rsa.h"
#include "util/ids.h"
#include "util/wire.h"

namespace p2pdrm::services {

/// Coordinates of a logical manager: one shared name/address and public key
/// per domain or partition, regardless of farm size (§V).
struct ManagerCoordinates {
  util::NetAddr addr;
  util::Bytes public_key;  // encoded RsaPublicKey

  void encode(util::WireWriter& w) const;
  static ManagerCoordinates decode(util::WireReader& r);
  friend bool operator==(const ManagerCoordinates&, const ManagerCoordinates&) = default;
};

struct RedirectRequest {
  std::string email;

  util::Bytes encode() const;
  static RedirectRequest decode(util::BytesView data);
};

struct RedirectResponse {
  bool found = false;
  std::uint32_t domain = 0;
  ManagerCoordinates user_manager;
  ManagerCoordinates channel_policy_manager;

  util::Bytes encode() const;
  static RedirectResponse decode(util::BytesView data);
};

class RedirectionManager {
 public:
  /// Register a domain's User Manager coordinates. Called repeatedly it
  /// grows the domain's instance pool: each call adds one farm instance
  /// (the first registered instance is the farm's "primary").
  void register_domain(std::uint32_t domain, ManagerCoordinates um);
  /// Assign a user to a domain (the Account Manager does this at signup).
  void assign_user(const std::string& email, std::uint32_t domain);
  void set_channel_policy_manager(ManagerCoordinates cpm);

  /// Health steering: lookups never return an instance marked down. The
  /// health signal comes from the operations plane (the deployment knows
  /// which farm members it crashed); a production redirector would run
  /// heartbeats instead.
  void set_instance_health(std::uint32_t domain, util::NetAddr addr, bool healthy);
  std::size_t healthy_instances(std::uint32_t domain) const;
  std::size_t instance_count(std::uint32_t domain) const;

  RedirectResponse handle_lookup(const RedirectRequest& req) const;

  std::size_t user_count() const { return user_domain_.size(); }

 private:
  struct Instance {
    ManagerCoordinates coords;
    bool healthy = true;
  };
  struct Domain {
    std::vector<Instance> instances;
    /// Round-robin cursor so a farm spreads logins across its members.
    mutable std::size_t cursor = 0;
  };

  std::map<std::string, std::uint32_t> user_domain_;
  std::map<std::uint32_t, Domain> domains_;
  ManagerCoordinates cpm_;
};

}  // namespace p2pdrm::services
