// Builders for common channel configurations (Fig. 2's patterns), shared by
// the in-process Testbed and the networked Deployment.
#pragma once

#include <string>

#include "core/policy.h"
#include "geo/geodb.h"

namespace p2pdrm::services {

/// Free-to-view channel restricted to one region:
///   attribute Region=<region>; policy "Region=<region> -> ACCEPT" @50.
core::ChannelRecord make_regional_channel(util::ChannelId id, const std::string& name,
                                          geo::RegionId region,
                                          std::uint32_t partition = 0);

/// Subscription channel: Region=<region> & Subscription=<package> -> ACCEPT.
core::ChannelRecord make_subscription_channel(util::ChannelId id,
                                              const std::string& name,
                                              geo::RegionId region,
                                              const std::string& package,
                                              std::uint32_t partition = 0);

/// Operator catalog config: the textual form a provider's channel lineup is
/// deployed from. One channel block per `channel` line; indented (or not —
/// leading whitespace is ignored) `attribute` and `policy` lines attach to
/// the preceding channel. `#` starts a comment.
///
///   # the paper's Fig. 2 lineup
///   channel 1 "Channel A" partition 0
///     attribute Region=100
///     attribute Region=101
///     attribute Subscription=101
///     policy Priority 50: Region=100 & Subscription=101, Return ACCEPT
///     policy Priority 50: Region=101, Return ACCEPT
///
/// Attribute lines accept optional validity bounds:
///   attribute Region=ANY stime=72000000000 etime=75600000000
///
/// Returns the parsed channels, or an error message with the line number.
struct CatalogParseResult {
  std::vector<core::ChannelRecord> channels;
  std::string error;  // empty on success

  bool ok() const { return error.empty(); }
};

CatalogParseResult parse_catalog(std::string_view text);

}  // namespace p2pdrm::services
