// Channel Server (§IV-E, Fig. 1).
//
// Ingests and "encodes" the live signal, encrypts it under the rotating
// content key, and acts as the root of the channel's distribution tree.
// Keys rotate on a fixed interval (default one minute per the paper); each
// iteration carries an 8-bit serial. New keys are minted one lead interval
// before their activation so the P2P network can distribute them ahead of
// use. A short ring of recent keys is kept so packets in flight across a
// rotation still decrypt.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "core/content.h"
#include "util/ids.h"
#include "util/time.h"

namespace p2pdrm::services {

struct ChannelServerConfig {
  util::ChannelId channel = 0;
  /// Rotation interval ("e.g., at one-minute interval").
  util::SimTime rekey_interval = 1 * util::kMinute;
  /// How far before activation a key is announced to the tree.
  util::SimTime announce_lead = 10 * util::kSecond;
  /// How many past keys stay decryptable (forward secrecy bound).
  std::size_t key_history = 4;
  /// Whether the provider encrypts at all (some public-mandate providers
  /// distribute in the clear but still control access; §IV-E footnote).
  bool encrypt = true;
};

class ChannelServer {
 public:
  ChannelServer(ChannelServerConfig config, crypto::SecureRandom rng,
                util::SimTime start);

  /// Advance to `now`, rotating keys as needed. Returns any newly minted
  /// keys (to be pushed down the distribution tree).
  std::vector<core::ContentKey> advance(util::SimTime now);

  /// The key that encrypts content produced at `now`.
  const core::ContentKey& active_key(util::SimTime now) const;

  /// Most recently minted key (what a joining peer receives first).
  const core::ContentKey& latest_key() const { return keys_.back(); }

  /// Encrypt one media payload produced at `now` into a content packet
  /// (plaintext passthrough with serial 0 when encryption is disabled).
  core::ContentPacket produce(util::BytesView payload, util::SimTime now);

  /// Key ring lookup by serial (nullopt once a key has aged out).
  std::optional<core::ContentKey> key_by_serial(std::uint8_t serial) const;

  const ChannelServerConfig& config() const { return config_; }
  std::uint64_t packets_produced() const { return next_seq_; }
  std::uint64_t keys_minted() const { return keys_minted_; }

 private:
  void mint_key(util::SimTime activation);

  ChannelServerConfig config_;
  crypto::SecureRandom rng_;
  std::deque<core::ContentKey> keys_;  // ascending activation time
  std::uint8_t next_serial_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t keys_minted_ = 0;
};

}  // namespace p2pdrm::services
