// Point-in-time snapshot of a state machine, paired with the journal
// sequence number it covers: recovery restores the snapshot then replays
// only journal records with seq > last_seq.
//
// Layout: magic "SNP1" u32 | version u8 | last_seq u64 | len u32 |
//         crc u32 | state bytes
// where crc = crc32(last_seq | state), so the sequence watermark is
// integrity-checked along with the state it describes.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.h"

namespace p2pdrm::store {

struct Snapshot {
  static constexpr std::uint32_t kMagic = 0x31504e53u;  // "SNP1"
  static constexpr std::uint8_t kVersion = 1;
  static constexpr std::size_t kHeaderSize = 4 + 1 + 8 + 4 + 4;

  std::uint64_t last_seq = 0;  // highest journal seq folded into `state`
  util::Bytes state;

  util::Bytes encode() const;
  /// Throws util::WireError on bad magic/version/length/CRC (fuzz contract).
  static Snapshot decode(util::BytesView data);
  /// Non-throwing variant for recovery paths: nullopt on any corruption.
  static std::optional<Snapshot> try_decode(util::BytesView data);
};

}  // namespace p2pdrm::store
