#include "store/farm_store.h"

#include <utility>

#include "util/wire.h"

namespace p2pdrm::store {

util::Bytes ReplicatedOp::encode() const {
  util::WireWriter w;
  w.u32(origin);
  w.u64(origin_seq);
  w.bytes(payload);
  return w.take();
}

ReplicatedOp ReplicatedOp::decode(util::BytesView data) {
  util::WireReader r(data);
  ReplicatedOp op;
  op.origin = r.u32();
  op.origin_seq = r.u64();
  op.payload = r.bytes();
  if (!r.at_end()) throw util::WireError("replicated op: trailing bytes");
  if (op.origin_seq == 0) throw util::WireError("replicated op: zero seq");
  return op;
}

std::optional<ReplicatedOp> ReplicatedOp::try_decode(util::BytesView data) {
  try {
    return decode(data);
  } catch (const util::WireError&) {
    return std::nullopt;
  }
}

FarmStore::FarmStore(std::uint32_t origin_id, Config config)
    : origin_id_(origin_id), config_(config) {}

void FarmStore::set_state_machine(ApplyFn apply, SnapshotFn snapshot,
                                  RestoreFn restore) {
  apply_ = std::move(apply);
  snapshot_ = std::move(snapshot);
  restore_ = std::move(restore);
}

ReplicatedOp FarmStore::submit(util::BytesView payload) {
  ReplicatedOp op;
  op.origin = origin_id_;
  op.origin_seq = ++local_seq_;
  op.payload.assign(payload.begin(), payload.end());
  applied_[origin_id_] = local_seq_;
  journal_op(op);
  return op;
}

void FarmStore::sync() { journal_.sync(); }

FarmStore::IngestResult FarmStore::ingest(const ReplicatedOp& op) {
  const std::uint64_t wm = watermark(op.origin);
  if (op.origin_seq <= wm) return IngestResult::kDuplicate;
  if (op.origin_seq != wm + 1) return IngestResult::kGap;
  apply_(op.payload);
  applied_[op.origin] = op.origin_seq;
  if (op.origin == origin_id_ && op.origin_seq > local_seq_) {
    // One of our own ops coming home via a sibling (we crashed after
    // shipping it but before syncing) — advance the issue counter so we
    // never reuse its sequence number.
    local_seq_ = op.origin_seq;
  }
  journal_op(op);
  return IngestResult::kApplied;
}

std::vector<ReplicatedOp> FarmStore::ops_since(
    const std::map<std::uint32_t, std::uint64_t>& peer_watermarks) const {
  std::vector<ReplicatedOp> out;
  for (const ReplicatedOp& op : ops_cache_) {
    const auto it = peer_watermarks.find(op.origin);
    const std::uint64_t wm = it == peer_watermarks.end() ? 0 : it->second;
    if (op.origin_seq > wm) out.push_back(op);
  }
  return out;
}

std::size_t FarmStore::catch_up_from(const FarmStore& src) {
  std::size_t pulled = 0;
  // Incremental path: replay src's cached ops past our watermarks, in the
  // order src journaled them (per-origin contiguous by construction).
  for (const ReplicatedOp& op : src.ops_since(applied_)) {
    if (ingest(op) == IngestResult::kApplied) ++pulled;
  }
  // Anything still missing means src compacted the ops past our watermark
  // into a snapshot. Adopt its full state — but only when that cannot lose
  // an op we hold and src lacks (src at-or-ahead of us on every origin).
  bool behind = false;
  for (const auto& [origin, wm] : src.applied_) {
    if (wm > watermark(origin)) behind = true;
  }
  bool ahead = false;
  for (const auto& [origin, wm] : applied_) {
    if (wm > src.watermark(origin)) ahead = true;
  }
  if (behind && !ahead) {
    unwrap_state(src.wrap_state());
    ops_cache_ = src.ops_cache_;
    take_snapshot();
    if (registry_ != nullptr) {
      registry_->counter("store.recovery.full_transfers").inc();
    }
    ++pulled;
  }
  if (registry_ != nullptr && pulled > 0) {
    registry_->counter("store.recovery.antientropy_ops").inc(pulled);
  }
  return pulled;
}

void FarmStore::crash(std::size_t torn_bytes) { journal_.crash(torn_bytes); }

void FarmStore::wipe() {
  journal_.wipe();
  snapshot_bytes_.clear();
  snapshot_last_seq_ = 0;
}

std::size_t FarmStore::recover() {
  applied_.clear();
  local_seq_ = 0;
  ops_cache_.clear();
  journaled_since_snapshot_ = 0;

  if (!snapshot_bytes_.empty()) {
    if (const std::optional<Snapshot> snap = Snapshot::try_decode(snapshot_bytes_)) {
      unwrap_state(snap->state);
      snapshot_last_seq_ = snap->last_seq;
    } else {
      // Corrupt snapshot: start empty and lean on journal + anti-entropy.
      if (registry_ != nullptr) registry_->counter("store.replay.corrupt").inc();
      snapshot_bytes_.clear();
      snapshot_last_seq_ = 0;
      restore_({});
    }
  } else {
    snapshot_last_seq_ = 0;
    restore_({});
  }

  const Journal::ReplayResult rr = journal_.recover(registry_);
  std::size_t applied_count = 0;
  for (const Journal::Record& rec : rr.records) {
    if (rec.seq <= snapshot_last_seq_) continue;  // folded into the snapshot
    const std::optional<ReplicatedOp> op = ReplicatedOp::try_decode(rec.payload);
    if (!op) {
      if (registry_ != nullptr) registry_->counter("store.replay.corrupt").inc();
      continue;
    }
    if (op->origin_seq <= watermark(op->origin)) continue;
    apply_(op->payload);
    applied_[op->origin] = op->origin_seq;
    ops_cache_.push_back(*op);
    ++applied_count;
    ++journaled_since_snapshot_;
  }
  local_seq_ = watermark(origin_id_);
  if (registry_ != nullptr && applied_count > 0) {
    registry_->counter("store.recovery.replayed").inc(applied_count);
  }
  return applied_count;
}

void FarmStore::take_snapshot() {
  journal_.sync();
  Snapshot snap;
  snap.last_seq = journal_.next_seq() - 1;
  snap.state = wrap_state();
  snapshot_bytes_ = snap.encode();
  snapshot_last_seq_ = snap.last_seq;
  journal_.compact();
  journaled_since_snapshot_ = 0;
  const std::size_t keep =
      config_.snapshot_every > 0 ? config_.snapshot_every : 256;
  if (ops_cache_.size() > keep) {
    ops_cache_.erase(ops_cache_.begin(),
                     ops_cache_.end() - static_cast<std::ptrdiff_t>(keep));
  }
  if (registry_ != nullptr) registry_->counter("store.snapshots.taken").inc();
}

std::uint64_t FarmStore::watermark(std::uint32_t origin) const {
  const auto it = applied_.find(origin);
  return it == applied_.end() ? 0 : it->second;
}

void FarmStore::journal_op(const ReplicatedOp& op) {
  journal_.append(op.encode());
  ops_cache_.push_back(op);
  ++journaled_since_snapshot_;
  maybe_snapshot();
}

void FarmStore::maybe_snapshot() {
  if (config_.snapshot_every > 0 &&
      journaled_since_snapshot_ >= config_.snapshot_every) {
    take_snapshot();
  }
}

util::Bytes FarmStore::wrap_state() const {
  util::WireWriter w;
  w.u32(static_cast<std::uint32_t>(applied_.size()));
  for (const auto& [origin, wm] : applied_) {
    w.u32(origin);
    w.u64(wm);
  }
  w.raw(snapshot_());
  return w.take();
}

void FarmStore::unwrap_state(util::BytesView wrapped) {
  if (wrapped.empty()) {
    applied_.clear();
    local_seq_ = 0;
    restore_({});
    return;
  }
  util::WireReader r(wrapped);
  const std::uint32_t n = r.u32();
  std::map<std::uint32_t, std::uint64_t> marks;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t origin = r.u32();
    marks[origin] = r.u64();
  }
  applied_ = std::move(marks);
  restore_(r.raw(r.remaining()));
  local_seq_ = watermark(origin_id_);
}

}  // namespace p2pdrm::store
