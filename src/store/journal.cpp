#include "store/journal.h"

#include <array>
#include <cstring>

namespace p2pdrm::store {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void append_le32(util::Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void append_le64(util::Bytes& out, std::uint64_t v) {
  append_le32(out, static_cast<std::uint32_t>(v));
  append_le32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t read_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t read_le64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(read_le32(p)) |
         static_cast<std::uint64_t>(read_le32(p + 4)) << 32;
}

}  // namespace

std::uint32_t crc32(util::BytesView data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (std::uint8_t b : data) {
    crc = table[(crc ^ b) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

namespace {

// Record CRC covers seq | len | payload, not just the payload: a bit flip
// in the sequence field would otherwise decode cleanly and silently shift
// replication watermarks.
std::uint32_t record_crc(std::uint64_t seq, util::BytesView payload) {
  util::Bytes buf;
  buf.reserve(12 + payload.size());
  append_le64(buf, seq);
  append_le32(buf, static_cast<std::uint32_t>(payload.size()));
  buf.insert(buf.end(), payload.begin(), payload.end());
  return crc32(buf);
}

}  // namespace

std::uint64_t Journal::append(util::BytesView payload) {
  const std::uint64_t seq = next_seq_++;
  append_le32(staged_, kRecordMagic);
  append_le64(staged_, seq);
  append_le32(staged_, static_cast<std::uint32_t>(payload.size()));
  append_le32(staged_, record_crc(seq, payload));
  staged_.insert(staged_.end(), payload.begin(), payload.end());
  ++staged_records_;
  return seq;
}

void Journal::sync() {
  durable_.insert(durable_.end(), staged_.begin(), staged_.end());
  staged_.clear();
  staged_records_ = 0;
  synced_next_seq_ = next_seq_;
}

void Journal::crash(std::size_t torn_bytes) {
  if (torn_bytes > staged_.size()) torn_bytes = staged_.size();
  durable_.insert(durable_.end(), staged_.begin(),
                  staged_.begin() + static_cast<std::ptrdiff_t>(torn_bytes));
  staged_.clear();
  staged_records_ = 0;
  // next_seq_ rolls back to what the media can actually prove; recover()
  // re-derives it from the surviving records.
  next_seq_ = synced_next_seq_;
}

void Journal::wipe() {
  durable_.clear();
  staged_.clear();
  staged_records_ = 0;
  synced_next_seq_ = next_seq_;
}

void Journal::compact() {
  durable_.clear();
  staged_.clear();
  staged_records_ = 0;
  synced_next_seq_ = next_seq_;
}

Journal::ReplayResult Journal::replay(util::BytesView image,
                                      obs::Registry* registry) {
  ReplayResult result;
  std::size_t pos = 0;
  while (pos < image.size()) {
    if (image.size() - pos < kHeaderSize) break;
    const std::uint8_t* p = image.data() + pos;
    if (read_le32(p) != kRecordMagic) break;
    const std::uint64_t seq = read_le64(p + 4);
    const std::uint32_t len = read_le32(p + 12);
    const std::uint32_t crc = read_le32(p + 16);
    if (image.size() - pos - kHeaderSize < len) break;
    util::BytesView payload = image.subspan(pos + kHeaderSize, len);
    if (record_crc(seq, payload) != crc) break;
    Record rec;
    rec.seq = seq;
    rec.payload.assign(payload.begin(), payload.end());
    result.records.push_back(std::move(rec));
    pos += kHeaderSize + len;
  }
  result.valid_bytes = pos;
  result.corrupt_bytes = image.size() - pos;
  result.clean = result.corrupt_bytes == 0;
  if (!result.clean && registry != nullptr) {
    registry->counter("store.replay.corrupt").inc();
    registry->counter("store.replay.corrupt_bytes").inc(result.corrupt_bytes);
  }
  return result;
}

Journal::ReplayResult Journal::recover(obs::Registry* registry) {
  ReplayResult result = replay(durable_, registry);
  durable_.resize(result.valid_bytes);
  staged_.clear();
  staged_records_ = 0;
  next_seq_ = result.records.empty() ? next_seq_ : result.records.back().seq + 1;
  if (next_seq_ < 1) next_seq_ = 1;
  synced_next_seq_ = next_seq_;
  return result;
}

}  // namespace p2pdrm::store
