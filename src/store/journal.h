// Append-only write-ahead journal with checksummed, torn-write-tolerant
// records — the durable half of a farm instance's state (§V: the paper's
// farm presents one logical manager; this is what one box actually holds).
//
// The journal models a single file on a single disk. Appends land in a
// *staged* tail that a crash loses (the OS page cache); sync() moves the
// tail into the durable image (fsync). A crash may additionally leave a
// torn prefix of the staged tail on the media — replay tolerates that by
// stopping at the first record whose magic, length, or CRC does not check
// out, exactly like a real WAL recovery.
//
// Record layout (all little-endian):
//   magic u32 ("JRN1") | seq u64 | len u32 | crc u32 | payload
// where crc = crc32(seq | len | payload): the header fields are covered
// too, so a bit flip in the sequence number is a torn record, not a
// silently shifted watermark.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/registry.h"
#include "util/bytes.h"

namespace p2pdrm::store {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `data`.
std::uint32_t crc32(util::BytesView data);

class Journal {
 public:
  static constexpr std::uint32_t kRecordMagic = 0x314e524au;  // "JRN1"
  static constexpr std::size_t kHeaderSize = 4 + 8 + 4 + 4;

  struct Record {
    std::uint64_t seq = 0;
    util::Bytes payload;
  };

  /// Outcome of walking a journal image record by record. Replay never
  /// throws: a corrupt or torn tail simply ends the walk, and everything
  /// before it is intact (a record is either wholly valid or not counted).
  struct ReplayResult {
    std::vector<Record> records;
    std::size_t valid_bytes = 0;    // length of the valid prefix
    std::size_t corrupt_bytes = 0;  // bytes abandoned past the valid prefix
    bool clean = true;              // false when a corrupt tail was hit
  };

  /// Append one record to the staged (unsynced) tail. Returns its sequence
  /// number. Sequence numbers are contiguous from 1.
  std::uint64_t append(util::BytesView payload);

  /// Make every staged record durable (fsync).
  void sync();

  /// Crash the box: the staged tail is lost. When `torn_bytes` > 0, that
  /// many bytes of the staged tail (capped at its length) land on the media
  /// anyway as a torn partial write — replay must reject them.
  void crash(std::size_t torn_bytes = 0);

  /// Destroy the media entirely (durable and staged) without resetting the
  /// sequence counter — wipe-state faults use this; recovery then has
  /// nothing to replay.
  void wipe();

  /// Drop all records (durable and staged) after a snapshot made them
  /// redundant. Sequence numbering continues (a snapshot records the last
  /// sequence it covers).
  void compact();

  /// Walk `image` and return every valid record, stopping at the first
  /// torn/corrupt one. Counts "store.replay.corrupt" (corrupt tails hit)
  /// and "store.replay.corrupt_bytes" in `registry` when given.
  static ReplayResult replay(util::BytesView image,
                             obs::Registry* registry = nullptr);

  /// Replay the durable image after a crash: truncates the media to the
  /// valid prefix (discarding a torn tail) and aligns the sequence counter
  /// so new appends continue after the last durable record.
  ReplayResult recover(obs::Registry* registry = nullptr);

  const util::Bytes& durable() const { return durable_; }
  std::size_t durable_bytes() const { return durable_.size(); }
  std::size_t staged_bytes() const { return staged_.size(); }
  std::uint64_t unsynced_records() const { return staged_records_; }
  /// Sequence number the next append will get.
  std::uint64_t next_seq() const { return next_seq_; }

 private:
  util::Bytes durable_;
  util::Bytes staged_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t synced_next_seq_ = 1;  // next_seq_ as of the last sync()
  std::uint64_t staged_records_ = 0;
};

}  // namespace p2pdrm::store
