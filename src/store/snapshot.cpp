#include "store/snapshot.h"

#include "store/journal.h"
#include "util/wire.h"

namespace p2pdrm::store {

namespace {

// The CRC covers last_seq | state: a corrupted last_seq would otherwise
// decode cleanly and make recovery skip (or re-apply) journal records.
std::uint32_t snapshot_crc(std::uint64_t last_seq, util::BytesView state) {
  util::WireWriter w;
  w.u64(last_seq);
  w.raw(state);
  const util::Bytes buf = w.take();
  return crc32(buf);
}

}  // namespace

util::Bytes Snapshot::encode() const {
  util::WireWriter w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u64(last_seq);
  w.u32(static_cast<std::uint32_t>(state.size()));
  w.u32(snapshot_crc(last_seq, state));
  w.raw(state);
  return w.take();
}

Snapshot Snapshot::decode(util::BytesView data) {
  util::WireReader r(data);
  if (r.u32() != kMagic) throw util::WireError("snapshot: bad magic");
  if (r.u8() != kVersion) throw util::WireError("snapshot: bad version");
  Snapshot snap;
  snap.last_seq = r.u64();
  const std::uint32_t len = r.u32();
  const std::uint32_t crc = r.u32();
  if (len != r.remaining()) throw util::WireError("snapshot: bad length");
  snap.state = r.raw(len);
  if (snapshot_crc(snap.last_seq, snap.state) != crc) {
    throw util::WireError("snapshot: bad crc");
  }
  return snap;
}

std::optional<Snapshot> Snapshot::try_decode(util::BytesView data) {
  try {
    return decode(data);
  } catch (const util::WireError&) {
    return std::nullopt;
  }
}

}  // namespace p2pdrm::store
