// Per-instance durable replica for a manager farm (§V): each farm box owns
// a journal + snapshot pair plus a gossip-replication log, so the farm's
// logical state (ViewingLog, user directory) survives any single crash.
//
// Replication model: multi-master with per-origin sequence numbers. Every
// locally-submitted op is journaled as ReplicatedOp{origin=me, origin_seq}
// and asynchronously shipped to sibling instances, which apply it if it is
// the next contiguous op from that origin (watermark check) and journal it
// themselves. On restart an instance recovers snapshot + journal replay,
// then runs anti-entropy (catch_up_from) against surviving siblings to pull
// ops it lost with its unsynced tail — including its *own* ops that a
// sibling already durably holds, which also restores the local sequence
// counter past everything the farm has seen from us (no seq reuse).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "obs/registry.h"
#include "store/journal.h"
#include "store/snapshot.h"
#include "util/bytes.h"

namespace p2pdrm::store {

/// One replicated state-machine operation, as journaled and as shipped
/// between farm instances.
/// Layout: origin u32 | origin_seq u64 | payload bytes (u32-prefixed)
struct ReplicatedOp {
  std::uint32_t origin = 0;
  std::uint64_t origin_seq = 0;
  util::Bytes payload;

  util::Bytes encode() const;
  static ReplicatedOp decode(util::BytesView data);  // throws WireError
  static std::optional<ReplicatedOp> try_decode(util::BytesView data);
};

class FarmStore {
 public:
  struct Config {
    /// Take a snapshot (and compact the journal) every N journaled ops.
    /// 0 disables automatic snapshots.
    std::uint64_t snapshot_every = 256;
  };

  enum class IngestResult : std::uint8_t { kApplied, kDuplicate, kGap };

  using ApplyFn = std::function<void(util::BytesView payload)>;
  using SnapshotFn = std::function<util::Bytes()>;
  using RestoreFn = std::function<void(util::BytesView state)>;

  explicit FarmStore(std::uint32_t origin_id) : FarmStore(origin_id, Config()) {}
  FarmStore(std::uint32_t origin_id, Config config);

  /// Metrics sink for replay/recovery counters (optional).
  void bind_registry(obs::Registry* registry) { registry_ = registry; }

  /// The owner's state machine: apply one op payload, serialize full state,
  /// restore full state. Must be set before recover()/ingest().
  void set_state_machine(ApplyFn apply, SnapshotFn snapshot, RestoreFn restore);

  std::uint32_t origin_id() const { return origin_id_; }

  /// Journal a locally-applied op (the owner has already mutated its
  /// in-memory state). Returns the op as it should be shipped to siblings.
  ReplicatedOp submit(util::BytesView payload);

  /// fsync the journal tail.
  void sync();

  /// Apply an op received from a sibling: applied when it is the next
  /// contiguous op from its origin, duplicate when already seen, gap when
  /// out of order (caller falls back to catch_up_from).
  IngestResult ingest(const ReplicatedOp& op);

  /// Ops this store holds with origin_seq > the peer's watermark for each
  /// origin; used to serve anti-entropy.
  std::vector<ReplicatedOp> ops_since(
      const std::map<std::uint32_t, std::uint64_t>& peer_watermarks) const;

  /// Anti-entropy: pull everything `src` has that we lack. Falls back to a
  /// full state transfer when src has compacted past our watermarks.
  /// Returns the number of ops (or full-state=1) pulled.
  std::size_t catch_up_from(const FarmStore& src);

  /// Crash the box: unsynced journal tail is lost (optionally leaving
  /// `torn_bytes` of it as a torn write). In-memory state is the owner's
  /// problem (it clears its own structures before recover()).
  void crash(std::size_t torn_bytes = 0);

  /// Destroy snapshot + journal media entirely (wipe-state fault).
  void wipe();

  /// Restore from snapshot + journal replay. Returns the number of ops
  /// replayed from the journal. The owner's restore/apply fns rebuild the
  /// in-memory state. Never throws: corrupt snapshot ⇒ empty state, corrupt
  /// journal tail ⇒ stops at last valid record.
  std::size_t recover();

  /// Snapshot current owner state and compact the journal.
  void take_snapshot();

  /// Highest contiguous origin_seq seen per origin (including self).
  const std::map<std::uint32_t, std::uint64_t>& watermarks() const {
    return applied_;
  }
  std::uint64_t watermark(std::uint32_t origin) const;

  std::uint64_t unsynced_ops() const { return journal_.unsynced_records(); }
  std::uint64_t local_seq() const { return local_seq_; }
  const Journal& journal() const { return journal_; }
  const util::Bytes& snapshot_bytes() const { return snapshot_bytes_; }

 private:
  void journal_op(const ReplicatedOp& op);
  void maybe_snapshot();
  util::Bytes wrap_state() const;
  void unwrap_state(util::BytesView wrapped);

  std::uint32_t origin_id_;
  Config config_;
  obs::Registry* registry_ = nullptr;
  ApplyFn apply_;
  SnapshotFn snapshot_;
  RestoreFn restore_;

  Journal journal_;
  util::Bytes snapshot_bytes_;  // encoded Snapshot, empty = none
  std::uint64_t snapshot_last_seq_ = 0;
  std::uint64_t journaled_since_snapshot_ = 0;

  std::uint64_t local_seq_ = 0;  // last origin_seq this instance issued
  std::map<std::uint32_t, std::uint64_t> applied_;  // origin → watermark

  /// Recently journaled ops kept in memory to serve anti-entropy without
  /// re-parsing the journal; trimmed at snapshot time.
  std::vector<ReplicatedOp> ops_cache_;
};

}  // namespace p2pdrm::store
