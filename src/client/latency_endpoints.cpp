#include "client/latency_endpoints.h"

namespace p2pdrm::client {

LatencyEndpoints::LatencyEndpoints(ServiceEndpoints& inner, util::ManualClock& clock,
                                   sim::LatencyModel net, sim::ServiceCosts costs,
                                   crypto::SecureRandom rng)
    : inner_(inner), clock_(clock), net_(net), costs_(costs), rng_(std::move(rng)) {}

services::RedirectResponse LatencyEndpoints::redirect(
    const services::RedirectRequest& req) {
  // A single hash lookup (§V): charge the same as LOGIN1's light handling.
  return timed(costs_.login1, [&] { return inner_.redirect(req); });
}

core::Login1Response LatencyEndpoints::login1(const core::Login1Request& req,
                                              util::NetAddr from) {
  return timed(costs_.login1, [&] { return inner_.login1(req, from); });
}

core::Login2Response LatencyEndpoints::login2(const core::Login2Request& req,
                                              util::NetAddr from) {
  return timed(costs_.login2, [&] { return inner_.login2(req, from); });
}

core::ChannelListResponse LatencyEndpoints::channel_list(
    const core::ChannelListRequest& req) {
  return timed(costs_.switch1, [&] { return inner_.channel_list(req); });
}

core::Switch1Response LatencyEndpoints::switch1(std::uint32_t partition,
                                                const core::Switch1Request& req,
                                                util::NetAddr from) {
  return timed(costs_.switch1, [&] { return inner_.switch1(partition, req, from); });
}

core::Switch2Response LatencyEndpoints::switch2(std::uint32_t partition,
                                                const core::Switch2Request& req,
                                                util::NetAddr from) {
  return timed(costs_.switch2, [&] { return inner_.switch2(partition, req, from); });
}

core::JoinResponse LatencyEndpoints::join(util::NodeId target,
                                          const core::JoinRequest& req,
                                          util::NetAddr from, util::NodeId self) {
  return timed(costs_.join, [&] { return inner_.join(target, req, from, self); });
}

bool LatencyEndpoints::present_renewal(util::NodeId target, util::NodeId self,
                                       const util::Bytes& renewed_ticket) {
  return timed(costs_.join,
               [&] { return inner_.present_renewal(target, self, renewed_ticket); });
}

}  // namespace p2pdrm::client
