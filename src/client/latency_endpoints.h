// ServiceEndpoints decorator that injects network + processing delay.
//
// Wraps any ServiceEndpoints (normally the Testbed) and advances the shared
// ManualClock around each call: half an RTT out, the per-request service
// time at the target, half an RTT back. The client's feedback log then
// records realistic latencies for every protocol round — the in-process
// analogue of the paper's production "user feedback" measurements, useful
// for protocol-level latency tests and demos where the full macro
// simulation would be overkill.
#pragma once

#include "client/client.h"
#include "sim/latency.h"
#include "sim/macro_sim.h"
#include "util/time.h"

namespace p2pdrm::client {

class LatencyEndpoints final : public ServiceEndpoints {
 public:
  /// `clock` must be the same clock the wrapped endpoints' services and the
  /// client observe.
  LatencyEndpoints(ServiceEndpoints& inner, util::ManualClock& clock,
                   sim::LatencyModel net, sim::ServiceCosts costs,
                   crypto::SecureRandom rng);

  services::RedirectResponse redirect(const services::RedirectRequest& req) override;
  core::Login1Response login1(const core::Login1Request& req,
                              util::NetAddr from) override;
  core::Login2Response login2(const core::Login2Request& req,
                              util::NetAddr from) override;
  core::ChannelListResponse channel_list(const core::ChannelListRequest& req) override;
  core::Switch1Response switch1(std::uint32_t partition, const core::Switch1Request& req,
                                util::NetAddr from) override;
  core::Switch2Response switch2(std::uint32_t partition, const core::Switch2Request& req,
                                util::NetAddr from) override;
  core::JoinResponse join(util::NodeId target, const core::JoinRequest& req,
                          util::NetAddr from, util::NodeId self) override;
  bool present_renewal(util::NodeId target, util::NodeId self,
                       const util::Bytes& renewed_ticket) override;

 private:
  /// Advance by out-trip + service, run `action`, advance by return trip.
  template <typename F>
  auto timed(util::SimTime service, F&& action) {
    const util::SimTime rtt = net_.sample_rtt(rng_);
    clock_.advance(rtt / 2 + service);
    auto result = action();
    clock_.advance(rtt - rtt / 2);
    return result;
  }

  ServiceEndpoints& inner_;
  util::ManualClock& clock_;
  sim::LatencyModel net_;
  sim::ServiceCosts costs_;
  crypto::SecureRandom rng_;
};

}  // namespace p2pdrm::client
