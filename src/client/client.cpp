#include "client/client.h"

#include "core/client_flows.h"

namespace p2pdrm::client {

using core::DrmError;

std::string_view to_string(Round r) {
  switch (r) {
    case Round::kLogin1: return "LOGIN1";
    case Round::kLogin2: return "LOGIN2";
    case Round::kSwitch1: return "SWITCH1";
    case Round::kSwitch2: return "SWITCH2";
    case Round::kJoin: return "JOIN";
  }
  return "?";
}

bool is_permanent_failure(core::DrmError err) {
  switch (err) {
    case DrmError::kUnknownUser:
    case DrmError::kBadCredentials:
    case DrmError::kAttestationFailed:
    case DrmError::kVersionTooOld:
    case DrmError::kAccessDenied:
    case DrmError::kUnknownChannel:
      return true;
    default:
      return false;
  }
}

Client::Client(ClientConfig config, ServiceEndpoints& endpoints,
               const util::Clock& clock, crypto::SecureRandom rng)
    : config_(std::move(config)), endpoints_(endpoints), clock_(clock),
      rng_(std::move(rng)), keys_(crypto::generate_rsa_keypair(rng_, config_.key_bits)) {}

void Client::record(Round round, util::SimTime started, bool success) {
  feedback_.push_back({round, started, clock_.now() - started, success});
}

core::DrmError Client::login() {
  if (!redirect_) {
    services::RedirectRequest rreq{config_.email};
    services::RedirectResponse rresp = endpoints_.redirect(rreq);
    if (!rresp.found) return DrmError::kUnknownUser;
    redirect_ = std::move(rresp);
  }

  // --- LOGIN1 ---
  core::Login1Request req1;
  req1.email = config_.email;
  req1.client_public_key = keys_.pub;
  req1.client_version = config_.client_version;

  util::SimTime started = clock_.now();
  core::Login1Response resp1 = endpoints_.login1(req1, config_.addr);
  record(Round::kLogin1, started, resp1.error == DrmError::kOk);
  if (resp1.error != DrmError::kOk) return resp1.error;

  // Decrypt nonce/params with the password hash; failure here means the
  // password is wrong (or the response was tampered with).
  const auto opened = core::open_login1_response(resp1, config_.password);
  if (!opened) return DrmError::kBadCredentials;

  // --- LOGIN2 ---
  const core::Login2Request req2 = core::build_login2_request(
      *opened, config_.email, keys_, config_.client_version, config_.client_binary);

  started = clock_.now();
  core::Login2Response resp2 = endpoints_.login2(req2, config_.addr);
  record(Round::kLogin2, started, resp2.error == DrmError::kOk && resp2.ticket.has_value());
  if (resp2.error != DrmError::kOk) return resp2.error;
  if (!resp2.ticket) return DrmError::kBadCredentials;

  previous_user_ticket_ = std::move(user_ticket_);
  user_ticket_ = std::move(resp2.ticket);

  // utime comparison (§IV-B): if any attribute in the new ticket is newer
  // than its counterpart in the previous one, refetch the Channel List for
  // those attribute names.
  std::vector<std::string> stale;
  if (previous_user_ticket_) {
    for (const core::Attribute& a : user_ticket_->ticket.attributes.items()) {
      if (a.utime == util::kNullTime) continue;
      const core::Attribute* old = previous_user_ticket_->ticket.attributes.find(a.name);
      if (old == nullptr || old->utime == util::kNullTime || a.utime > old->utime) {
        stale.push_back(a.name);
      }
    }
  }
  if (channels_.empty() || !stale.empty()) {
    return refresh_channel_list(channels_.empty() ? std::vector<std::string>{} : stale);
  }
  return DrmError::kOk;
}

core::DrmError Client::ensure_user_ticket() {
  if (user_ticket_ &&
      user_ticket_->ticket.expiry_time - clock_.now() > config_.user_ticket_slack) {
    return DrmError::kOk;
  }
  return login();
}

core::DrmError Client::refresh_channel_list(const std::vector<std::string>& stale) {
  if (!user_ticket_) return DrmError::kBadTicket;
  core::ChannelListRequest req;
  req.user_ticket = user_ticket_->encode();
  req.stale_attributes = stale;
  core::ChannelListResponse resp = endpoints_.channel_list(req);
  if (resp.error != DrmError::kOk) return resp.error;

  if (stale.empty()) {
    channels_ = std::move(resp.channels);
  } else {
    // Merge: replace channels present in the partial response.
    for (core::ChannelRecord& fresh : resp.channels) {
      bool replaced = false;
      for (core::ChannelRecord& cached : channels_) {
        if (cached.id == fresh.id) {
          cached = std::move(fresh);
          replaced = true;
          break;
        }
      }
      if (!replaced) channels_.push_back(std::move(fresh));
    }
  }
  if (!resp.partitions.empty()) partitions_ = std::move(resp.partitions);
  return DrmError::kOk;
}

std::uint32_t Client::partition_of(util::ChannelId channel) const {
  for (const core::ChannelRecord& c : channels_) {
    if (c.id == channel) return c.partition;
  }
  return 0;
}

const core::PartitionInfo* Client::partition_info(std::uint32_t partition) const {
  for (const core::PartitionInfo& p : partitions_) {
    if (p.partition == partition) return &p;
  }
  return nullptr;
}

std::optional<util::ChannelId> Client::current_channel() const {
  if (!channel_ticket_) return std::nullopt;
  return channel_ticket_->ticket.channel_id;
}

std::vector<util::ChannelId> Client::viewable_channels() const {
  std::vector<util::ChannelId> out;
  if (!user_ticket_) return out;
  const util::SimTime now = clock_.now();
  for (const core::ChannelRecord& c : channels_) {
    if (core::channel_accessible(c, user_ticket_->ticket.attributes, now)) {
      out.push_back(c.id);
    }
  }
  return out;
}

core::DrmError Client::switch_channel(util::ChannelId channel) {
  if (const DrmError err = ensure_user_ticket(); err != DrmError::kOk) return err;
  const std::uint32_t partition = partition_of(channel);

  // --- SWITCH1 ---
  core::Switch1Request req1;
  req1.user_ticket = user_ticket_->encode();
  req1.channel_id = channel;

  util::SimTime started = clock_.now();
  core::Switch1Response resp1 = endpoints_.switch1(partition, req1, config_.addr);
  record(Round::kSwitch1, started, resp1.error == DrmError::kOk);
  if (resp1.error != DrmError::kOk) return resp1.error;

  // --- SWITCH2 ---
  const core::Switch2Request req2 =
      core::build_switch2_request(resp1, req1.user_ticket, channel, {}, keys_.priv);

  started = clock_.now();
  core::Switch2Response resp2 = endpoints_.switch2(partition, req2, config_.addr);
  record(Round::kSwitch2, started,
         resp2.error == DrmError::kOk && resp2.ticket.has_value());
  if (resp2.error != DrmError::kOk) return resp2.error;
  if (!resp2.ticket) return DrmError::kAccessDenied;

  // Leaving the old channel: drop overlay state; the new ticket replaces
  // the old one (a client is a member of one P2P network at a time, §III).
  channel_ticket_ = std::move(resp2.ticket);
  parent_.reset();

  // (Re)create the overlay half for the new channel.
  const core::PartitionInfo* pinfo = partition_info(partition);
  crypto::RsaPublicKey cm_key;
  if (pinfo != nullptr) {
    cm_key = crypto::RsaPublicKey::decode(pinfo->manager_public_key);
  }
  p2p::PeerConfig pc;
  pc.node = config_.node;
  pc.addr = config_.addr;
  pc.channel = channel;
  pc.capacity = config_.peer_capacity;
  peer_ = std::make_unique<p2p::Peer>(pc, keys_, cm_key, rng_.fork());

  return join_overlay(resp2.peers);
}

core::DrmError Client::join_overlay(const std::vector<core::PeerInfo>& peers) {
  if (!channel_ticket_ || !peer_) return DrmError::kBadTicket;
  const core::JoinRequest req = peer_->make_join_request(*channel_ticket_);

  const util::SimTime started = clock_.now();
  // Paper: the client contacts "a number of peers listed in the peer list";
  // we walk the list until one accepts.
  for (const core::PeerInfo& candidate : peers) {
    const core::JoinResponse resp =
        endpoints_.join(candidate.node, req, config_.addr, config_.node);
    if (resp.error != DrmError::kOk) continue;
    if (peer_->complete_join(candidate.node, resp)) {
      parent_ = candidate.node;
      record(Round::kJoin, started, true);
      return DrmError::kOk;
    }
  }
  record(Round::kJoin, started, false);
  return DrmError::kNoCapacity;
}

core::DrmError Client::renew_channel_ticket() {
  if (!channel_ticket_) return DrmError::kBadTicket;
  if (const DrmError err = ensure_user_ticket(); err != DrmError::kOk) return err;
  const std::uint32_t partition = partition_of(channel_ticket_->ticket.channel_id);

  core::Switch1Request req1;
  req1.user_ticket = user_ticket_->encode();
  req1.expiring_ticket = channel_ticket_->encode();

  util::SimTime started = clock_.now();
  core::Switch1Response resp1 = endpoints_.switch1(partition, req1, config_.addr);
  record(Round::kSwitch1, started, resp1.error == DrmError::kOk);
  if (resp1.error != DrmError::kOk) return resp1.error;

  const core::Switch2Request req2 = core::build_switch2_request(
      resp1, req1.user_ticket, 0, req1.expiring_ticket, keys_.priv);

  started = clock_.now();
  core::Switch2Response resp2 = endpoints_.switch2(partition, req2, config_.addr);
  record(Round::kSwitch2, started,
         resp2.error == DrmError::kOk && resp2.ticket.has_value());
  if (resp2.error != DrmError::kOk) return resp2.error;
  if (!resp2.ticket || !resp2.ticket->ticket.renewal) return DrmError::kRenewalRefused;

  channel_ticket_ = std::move(resp2.ticket);

  // Present the renewal to the parent so it does not sever us at expiry.
  if (parent_) {
    endpoints_.present_renewal(*parent_, config_.node, channel_ticket_->encode());
  }
  return DrmError::kOk;
}

std::optional<util::Bytes> Client::receive(const core::ContentPacket& packet) {
  if (!peer_) return std::nullopt;
  return peer_->decrypt(packet);
}

}  // namespace p2pdrm::client
