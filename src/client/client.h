// Client (§III, §IV-F, Fig. 1).
//
// Drives the full user-side protocol sequence:
//   redirect lookup -> LOGIN1/LOGIN2 -> (Channel List refresh on stale
//   utimes) -> SWITCH1/SWITCH2 -> JOIN -> periodic User/Channel Ticket
//   renewal -> watch (decrypt packets).
//
// The client reaches the backend through the ServiceEndpoints interface so
// the same state machine runs against in-process services (tests,
// examples) or a simulated network. Every protocol round is timed through
// the injected Clock and recorded in the feedback log — the measurement
// instrument behind the paper's Figs. 5 and 6.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/messages.h"
#include "core/ticket.h"
#include "p2p/peer.h"
#include "services/redirection_manager.h"
#include "util/time.h"

namespace p2pdrm::client {

/// Protocol rounds, named as in the paper's evaluation.
enum class Round : std::uint8_t { kLogin1, kLogin2, kSwitch1, kSwitch2, kJoin };
std::string_view to_string(Round r);

/// True for failures no amount of retrying, failover, or re-login can fix
/// (bad credentials, access denied, ...). Infrastructure errors — timeouts,
/// capacity, wrong-partition — are recoverable and return false. Shared by
/// the in-process client and net::AsyncClient's session-recovery loop so
/// the two transports agree on what is worth retrying.
bool is_permanent_failure(core::DrmError err);

/// One timed protocol round in the client's feedback log.
struct LatencySample {
  Round round;
  util::SimTime started = 0;
  util::SimTime latency = 0;
  bool success = false;
};

/// Transport abstraction: how requests reach the managers and peers.
/// `from` is the client's connection address (managers bind tickets to it).
class ServiceEndpoints {
 public:
  virtual ~ServiceEndpoints() = default;

  virtual services::RedirectResponse redirect(const services::RedirectRequest& req) = 0;
  virtual core::Login1Response login1(const core::Login1Request& req,
                                      util::NetAddr from) = 0;
  virtual core::Login2Response login2(const core::Login2Request& req,
                                      util::NetAddr from) = 0;
  virtual core::ChannelListResponse channel_list(const core::ChannelListRequest& req) = 0;
  /// `partition` selects the Channel Manager (§V); 0 when unpartitioned.
  virtual core::Switch1Response switch1(std::uint32_t partition,
                                        const core::Switch1Request& req,
                                        util::NetAddr from) = 0;
  virtual core::Switch2Response switch2(std::uint32_t partition,
                                        const core::Switch2Request& req,
                                        util::NetAddr from) = 0;
  virtual core::JoinResponse join(util::NodeId target, const core::JoinRequest& req,
                                  util::NetAddr from, util::NodeId self) = 0;
  /// Present a renewal Channel Ticket to a peer we are a child of.
  virtual bool present_renewal(util::NodeId target, util::NodeId self,
                               const util::Bytes& renewed_ticket) = 0;
};

struct ClientConfig {
  std::string email;
  std::string password;
  std::uint32_t client_version = 1;
  /// This client's binary image (hashed for attestation). Must equal the
  /// User Manager's reference binary for this version to pass login.
  util::Bytes client_binary;
  util::NetAddr addr;
  util::NodeId node = util::kInvalidNode;
  /// Child capacity the client contributes to the overlay.
  std::size_t peer_capacity = 4;
  /// RSA modulus bits for the client key pair.
  std::size_t key_bits = 512;
  /// Renew the User Ticket when less than this remains.
  util::SimTime user_ticket_slack = 2 * util::kMinute;
};

class Client {
 public:
  Client(ClientConfig config, ServiceEndpoints& endpoints, const util::Clock& clock,
         crypto::SecureRandom rng);

  // --- protocol drivers (return kOk on success) ---

  /// Redirect lookup + LOGIN1/LOGIN2. On success holds a fresh User Ticket;
  /// refreshes the cached Channel List if any utime advanced (§IV-B).
  core::DrmError login();

  /// Re-login if the User Ticket is missing or expires within the slack.
  core::DrmError ensure_user_ticket();

  /// SWITCH1/SWITCH2 for `channel`, then JOIN against the returned peer
  /// list (tried in order). Leaves any previous channel first.
  core::DrmError switch_channel(util::ChannelId channel);

  /// Renew the current Channel Ticket (§IV-D) and present the renewal to
  /// the parent peer(s).
  core::DrmError renew_channel_ticket();

  /// Decrypt a received content packet (also forwards nothing — transport
  /// of packets between peers is the harness's job via peer()).
  std::optional<util::Bytes> receive(const core::ContentPacket& packet);

  // --- state inspection ---

  bool logged_in() const { return user_ticket_.has_value(); }
  const std::optional<core::SignedUserTicket>& user_ticket() const { return user_ticket_; }
  const std::optional<core::SignedChannelTicket>& channel_ticket() const {
    return channel_ticket_;
  }
  std::optional<util::ChannelId> current_channel() const;
  /// Channels the user could watch right now, per cached list + own attrs.
  std::vector<util::ChannelId> viewable_channels() const;
  const std::vector<core::ChannelRecord>& cached_channels() const { return channels_; }

  /// The client's overlay half (valid after the first successful join).
  p2p::Peer* peer() { return peer_.get(); }
  const p2p::Peer* peer() const { return peer_.get(); }
  std::optional<util::NodeId> parent() const { return parent_; }

  const std::vector<LatencySample>& feedback_log() const { return feedback_; }
  const crypto::RsaPublicKey& public_key() const { return keys_.pub; }
  const ClientConfig& config() const { return config_; }

 private:
  core::DrmError refresh_channel_list(const std::vector<std::string>& stale);
  std::uint32_t partition_of(util::ChannelId channel) const;
  const core::PartitionInfo* partition_info(std::uint32_t partition) const;
  core::DrmError join_overlay(const std::vector<core::PeerInfo>& peers);
  void record(Round round, util::SimTime started, bool success);

  ClientConfig config_;
  ServiceEndpoints& endpoints_;
  const util::Clock& clock_;
  crypto::SecureRandom rng_;
  crypto::RsaKeyPair keys_;

  std::optional<services::RedirectResponse> redirect_;
  std::optional<core::SignedUserTicket> user_ticket_;
  std::optional<core::SignedUserTicket> previous_user_ticket_;
  std::optional<core::SignedChannelTicket> channel_ticket_;
  std::vector<core::ChannelRecord> channels_;
  std::vector<core::PartitionInfo> partitions_;
  std::unique_ptr<p2p::Peer> peer_;
  std::optional<util::NodeId> parent_;
  std::vector<LatencySample> feedback_;
};

}  // namespace p2pdrm::client
