// In-process deployment of the full system: Account Manager, Redirection
// Manager, a User Manager farm, a Channel Policy Manager, Channel Manager
// farms (one per partition), tracker, Channel Servers, and any number of
// clients — all wired through direct calls with a shared ManualClock.
//
// This is the integration harness used by the test suite and the examples:
// every protocol byte that would cross the network in production crosses
// these method calls instead, through the exact same encode/verify paths.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "geo/geodb.h"
#include "p2p/tracker.h"
#include "services/account_manager.h"
#include "services/channel_manager.h"
#include "services/channel_policy_manager.h"
#include "services/channel_server.h"
#include "services/redirection_manager.h"
#include "services/user_manager.h"

namespace p2pdrm::client {

struct TestbedConfig {
  std::uint64_t seed = 1;
  /// RSA key size for managers and clients (512 keeps tests fast).
  std::size_t key_bits = 512;
  std::size_t partitions = 1;
  geo::SyntheticGeoPlan geo_plan;
  services::UserManagerConfig um;
  services::ChannelManagerConfig cm;
  /// Reference client binary registered for version `um.minimum_client_version`.
  std::size_t client_binary_size = 16 * 1024;
};

class Testbed : public ServiceEndpoints {
 public:
  explicit Testbed(TestbedConfig config = {});

  // --- provisioning ---

  /// Create an account + redirection entry. Returns false on duplicates.
  bool add_user(const std::string& email, const std::string& password);

  /// Create a free-to-view channel restricted to `region` (ACCEPT policy on
  /// Region=<region>), assigned to `partition`.
  void add_regional_channel(util::ChannelId id, const std::string& name,
                            geo::RegionId region, std::uint32_t partition = 0);

  /// Create a subscription channel: Region=<region> & Subscription=<package>.
  void add_subscription_channel(util::ChannelId id, const std::string& name,
                                geo::RegionId region, const std::string& package,
                                std::uint32_t partition = 0);

  /// Deploy a whole lineup from catalog-config text (services::parse_catalog
  /// format). Returns the parse error, empty on success.
  std::string load_catalog(std::string_view text);

  /// Start a Channel Server (root of the distribution tree) for a channel.
  services::ChannelServer& start_channel_server(util::ChannelId id,
                                                services::ChannelServerConfig cfg = {});

  /// Create a client for `email` located in `region` (address sampled from
  /// that region's prefixes). The client binary matches the reference.
  Client& add_client(const std::string& email, const std::string& password,
                     geo::RegionId region);

  /// Make a client's overlay peer discoverable as a parent candidate.
  void announce(Client& c);

  // --- content flow ---

  /// Advance clock & channel servers; rotated keys are pushed down every
  /// distribution tree (pair-wise re-encryption at each hop).
  void advance(util::SimTime dt);

  /// Produce one content packet at the channel's server and flood it down
  /// the tree. Returns the decrypted payload per reached node (kInvalidNode
  /// entries never appear; nodes lacking the key yield no entry).
  std::map<util::NodeId, util::Bytes> broadcast(util::ChannelId channel,
                                                util::BytesView payload);

  /// Evict expired children at every peer (returns total evictions).
  std::size_t evict_expired();

  // --- ServiceEndpoints (what clients call) ---

  services::RedirectResponse redirect(const services::RedirectRequest& req) override;
  core::Login1Response login1(const core::Login1Request& req,
                              util::NetAddr from) override;
  core::Login2Response login2(const core::Login2Request& req,
                              util::NetAddr from) override;
  core::ChannelListResponse channel_list(const core::ChannelListRequest& req) override;
  core::Switch1Response switch1(std::uint32_t partition, const core::Switch1Request& req,
                                util::NetAddr from) override;
  core::Switch2Response switch2(std::uint32_t partition, const core::Switch2Request& req,
                                util::NetAddr from) override;
  core::JoinResponse join(util::NodeId target, const core::JoinRequest& req,
                          util::NetAddr from, util::NodeId self) override;
  bool present_renewal(util::NodeId target, util::NodeId self,
                       const util::Bytes& renewed_ticket) override;

  // --- component access ---

  util::ManualClock& clock() { return clock_; }
  services::AccountManager& accounts() { return *accounts_; }
  services::UserManager& user_manager() { return *um_; }
  services::ChannelPolicyManager& policy_manager() { return *cpm_; }
  services::ChannelManager& channel_manager(std::uint32_t partition = 0);
  services::RedirectionManager& redirection() { return redirection_; }
  p2p::Tracker& tracker() { return *tracker_; }
  const geo::SyntheticGeo& geo() const { return *geo_; }
  const TestbedConfig& config() const { return config_; }

 private:
  p2p::Peer* peer_of(util::NodeId node);
  void deliver_key_blobs(util::NodeId from, std::vector<p2p::Outgoing> blobs);
  void add_channel(core::ChannelRecord record);

  TestbedConfig config_;
  crypto::SecureRandom rng_;
  util::ManualClock clock_;

  std::unique_ptr<geo::SyntheticGeo> geo_;
  std::unique_ptr<services::AccountManager> accounts_;
  std::shared_ptr<services::UserManagerDomain> um_domain_;
  std::unique_ptr<services::UserManager> um_;
  std::unique_ptr<services::ChannelPolicyManager> cpm_;
  std::vector<std::shared_ptr<services::ChannelManagerPartition>> cm_partitions_;
  std::vector<std::unique_ptr<services::ChannelManager>> cms_;
  std::unique_ptr<p2p::Tracker> tracker_;
  services::RedirectionManager redirection_;

  util::Bytes reference_binary_;

  struct ChannelSource {
    std::unique_ptr<services::ChannelServer> server;
    std::unique_ptr<p2p::Peer> root;
  };
  std::map<util::ChannelId, ChannelSource> sources_;

  std::vector<std::unique_ptr<Client>> clients_;
  std::map<util::NodeId, Client*> client_by_node_;
  util::NodeId next_node_ = 1000;
};

}  // namespace p2pdrm::client
