#include "client/testbed.h"

#include <stdexcept>

#include "services/catalog.h"

namespace p2pdrm::client {

namespace {
constexpr util::NodeId kRootNodeBase = 1;  // root peers use channel id + base
}

Testbed::Testbed(TestbedConfig config)
    : config_(config), rng_(config.seed) {
  geo_ = std::make_unique<geo::SyntheticGeo>(rng_, config_.geo_plan);

  // User Manager domain + farm instance.
  um_domain_ = std::make_shared<services::UserManagerDomain>(
      config_.um, crypto::generate_rsa_keypair(rng_, config_.key_bits),
      rng_.bytes(32));
  reference_binary_ = rng_.bytes(config_.client_binary_size);
  um_domain_->reference_binaries[config_.um.minimum_client_version] = reference_binary_;
  um_ = std::make_unique<services::UserManager>(um_domain_, &geo_->db(), rng_.fork());

  // Account Manager provisions straight into the User Manager.
  accounts_ = std::make_unique<services::AccountManager>(
      [this](const services::UserProvisioning& p) { um_->provision(p); });

  // Channel Policy Manager feeding the UM (attribute list) and CMs
  // (channel lists).
  cpm_ = std::make_unique<services::ChannelPolicyManager>(um_domain_->keys.pub);
  cpm_->add_attribute_list_sink(
      [this](const core::AttributeSet& list) { um_->update_channel_attributes(list); });

  tracker_ = std::make_unique<p2p::Tracker>(rng_.fork());

  // One Channel Manager farm per partition, all fed by the CPM.
  for (std::size_t p = 0; p < config_.partitions; ++p) {
    services::ChannelManagerConfig cm_cfg = config_.cm;
    cm_cfg.partition = static_cast<std::uint32_t>(p);
    auto partition = std::make_shared<services::ChannelManagerPartition>(
        cm_cfg, crypto::generate_rsa_keypair(rng_, config_.key_bits),
        um_domain_->keys.pub, rng_.bytes(32));
    cm_partitions_.push_back(partition);
    cms_.push_back(std::make_unique<services::ChannelManager>(partition, tracker_.get(),
                                                              rng_.fork()));
    services::ChannelManager* cm = cms_.back().get();
    cpm_->add_channel_list_sink(
        [cm](const std::vector<core::ChannelRecord>& list) {
          cm->update_channel_list(list);
        });

    core::PartitionInfo info;
    info.partition = cm_cfg.partition;
    info.manager_addr = util::NetAddr{0x0a000000u + cm_cfg.partition};
    info.manager_public_key = partition->keys.pub.encode();
    cpm_->set_partition_info(info);
  }

  redirection_.register_domain(
      config_.um.domain,
      services::ManagerCoordinates{util::NetAddr{0x0afe0001},
                                   um_domain_->keys.pub.encode()});
  redirection_.set_channel_policy_manager(
      services::ManagerCoordinates{util::NetAddr{0x0afe0002}, {}});
}

services::ChannelManager& Testbed::channel_manager(std::uint32_t partition) {
  if (partition >= cms_.size()) throw std::out_of_range("Testbed: partition");
  return *cms_[partition];
}

bool Testbed::add_user(const std::string& email, const std::string& password) {
  if (!accounts_->create_account(email, password, clock_.now())) return false;
  redirection_.assign_user(email, config_.um.domain);
  return true;
}

void Testbed::add_channel(core::ChannelRecord record) {
  cpm_->add_channel(std::move(record), clock_.now());
}

void Testbed::add_regional_channel(util::ChannelId id, const std::string& name,
                                   geo::RegionId region, std::uint32_t partition) {
  add_channel(services::make_regional_channel(id, name, region, partition));
}

void Testbed::add_subscription_channel(util::ChannelId id, const std::string& name,
                                       geo::RegionId region, const std::string& package,
                                       std::uint32_t partition) {
  add_channel(services::make_subscription_channel(id, name, region, package, partition));
}

std::string Testbed::load_catalog(std::string_view text) {
  services::CatalogParseResult parsed = services::parse_catalog(text);
  if (!parsed.ok()) return parsed.error;
  for (core::ChannelRecord& channel : parsed.channels) {
    add_channel(std::move(channel));
  }
  return {};
}

services::ChannelServer& Testbed::start_channel_server(
    util::ChannelId id, services::ChannelServerConfig cfg) {
  cfg.channel = id;
  const core::ChannelRecord* record = cpm_->find_channel(id);
  if (record == nullptr) throw std::invalid_argument("Testbed: unknown channel");

  ChannelSource source;
  source.server =
      std::make_unique<services::ChannelServer>(cfg, rng_.fork(), clock_.now());

  p2p::PeerConfig pc;
  pc.node = kRootNodeBase + id;
  pc.addr = util::NetAddr{0x0ac00000u + id};
  pc.channel = id;
  pc.capacity = 64;  // the server's ingest box has real upload budget
  source.root = std::make_unique<p2p::Peer>(
      pc, crypto::generate_rsa_keypair(rng_, config_.key_bits),
      cm_partitions_[record->partition]->keys.pub, rng_.fork());
  source.root->install_key(source.server->latest_key());

  tracker_->register_peer(id, core::PeerInfo{pc.node, pc.addr}, pc.capacity);
  auto [it, inserted] = sources_.insert_or_assign(id, std::move(source));
  return *it->second.server;
}

Client& Testbed::add_client(const std::string& email, const std::string& password,
                            geo::RegionId region) {
  ClientConfig cc;
  cc.email = email;
  cc.password = password;
  cc.client_version = config_.um.minimum_client_version;
  cc.client_binary = reference_binary_;
  cc.addr = geo_->sample_address(rng_, region);
  cc.node = next_node_++;
  cc.key_bits = config_.key_bits;
  clients_.push_back(std::make_unique<Client>(cc, *this, clock_, rng_.fork()));
  client_by_node_[cc.node] = clients_.back().get();
  return *clients_.back();
}

void Testbed::announce(Client& c) {
  if (c.peer() == nullptr || !c.current_channel()) return;
  tracker_->register_peer(*c.current_channel(),
                          core::PeerInfo{c.config().node, c.config().addr},
                          c.config().peer_capacity);
}

p2p::Peer* Testbed::peer_of(util::NodeId node) {
  const auto client_it = client_by_node_.find(node);
  if (client_it != client_by_node_.end()) return client_it->second->peer();
  for (auto& [id, source] : sources_) {
    if (source.root->config().node == node) return source.root.get();
  }
  return nullptr;
}

void Testbed::deliver_key_blobs(util::NodeId from, std::vector<p2p::Outgoing> blobs) {
  // Breadth-first relay down the tree: each hop decrypts with its parent
  // link's session key and re-encrypts per child.
  std::vector<std::pair<util::NodeId, p2p::Outgoing>> frontier;
  frontier.reserve(blobs.size());
  for (p2p::Outgoing& o : blobs) frontier.push_back({from, std::move(o)});
  while (!frontier.empty()) {
    std::vector<std::pair<util::NodeId, p2p::Outgoing>> next;
    for (auto& [sender, out] : frontier) {
      p2p::Peer* target = peer_of(out.to);
      if (target == nullptr) continue;
      std::vector<p2p::Outgoing> forwarded = target->handle_key_blob(sender, out.payload);
      for (p2p::Outgoing& f : forwarded) next.push_back({out.to, std::move(f)});
    }
    frontier = std::move(next);
  }
}

void Testbed::advance(util::SimTime dt) {
  clock_.advance(dt);
  for (auto& [id, source] : sources_) {
    for (const core::ContentKey& key : source.server->advance(clock_.now())) {
      deliver_key_blobs(source.root->config().node, source.root->announce_key(key));
    }
  }
}

std::map<util::NodeId, util::Bytes> Testbed::broadcast(util::ChannelId channel,
                                                       util::BytesView payload) {
  const auto it = sources_.find(channel);
  if (it == sources_.end()) throw std::invalid_argument("Testbed: no channel server");
  const core::ContentPacket packet =
      it->second.server->produce(payload, clock_.now());

  std::map<util::NodeId, util::Bytes> received;
  std::vector<util::NodeId> frontier = it->second.root->forward_targets();
  while (!frontier.empty()) {
    std::vector<util::NodeId> next;
    for (util::NodeId node : frontier) {
      p2p::Peer* peer = peer_of(node);
      if (peer == nullptr) continue;
      if (auto plain = peer->decrypt(packet)) received[node] = std::move(*plain);
      for (util::NodeId child : peer->forward_targets()) next.push_back(child);
    }
    frontier = std::move(next);
  }
  return received;
}

std::size_t Testbed::evict_expired() {
  std::size_t total = 0;
  for (auto& [id, source] : sources_) {
    total += source.root->evict_expired(clock_.now()).size();
  }
  for (auto& c : clients_) {
    if (c->peer() != nullptr) total += c->peer()->evict_expired(clock_.now()).size();
  }
  return total;
}

services::RedirectResponse Testbed::redirect(const services::RedirectRequest& req) {
  return redirection_.handle_lookup(req);
}

core::Login1Response Testbed::login1(const core::Login1Request& req,
                                     util::NetAddr from) {
  return um_->handle_login1(req, from, clock_.now());
}

core::Login2Response Testbed::login2(const core::Login2Request& req,
                                     util::NetAddr from) {
  return um_->handle_login2(req, from, clock_.now());
}

core::ChannelListResponse Testbed::channel_list(const core::ChannelListRequest& req) {
  return cpm_->handle_channel_list(req, clock_.now());
}

core::Switch1Response Testbed::switch1(std::uint32_t partition,
                                       const core::Switch1Request& req,
                                       util::NetAddr from) {
  return channel_manager(partition).handle_switch1(req, from, clock_.now());
}

core::Switch2Response Testbed::switch2(std::uint32_t partition,
                                       const core::Switch2Request& req,
                                       util::NetAddr from) {
  return channel_manager(partition).handle_switch2(req, from, clock_.now());
}

core::JoinResponse Testbed::join(util::NodeId target, const core::JoinRequest& req,
                                 util::NetAddr from, util::NodeId self) {
  p2p::Peer* peer = peer_of(target);
  if (peer == nullptr) {
    core::JoinResponse resp;
    resp.error = core::DrmError::kNoCapacity;
    return resp;
  }
  core::JoinResponse resp = peer->handle_join(req, from, self, clock_.now());
  if (resp.error == core::DrmError::kOk) {
    tracker_->update_load(peer->config().channel, target, peer->child_count());
  }
  return resp;
}

bool Testbed::present_renewal(util::NodeId target, util::NodeId self,
                              const util::Bytes& renewed_ticket) {
  p2p::Peer* peer = peer_of(target);
  if (peer == nullptr) return false;
  return peer->present_renewal(self, renewed_ticket, clock_.now());
}

}  // namespace p2pdrm::client
