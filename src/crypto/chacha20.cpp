#include "crypto/chacha20.h"

#include <cmath>
#include <cstring>

#include "crypto/sha256.h"

namespace p2pdrm::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

}  // namespace

void chacha20_block(const ChaChaKey& key, const ChaChaNonce& nonce,
                    std::uint32_t counter, std::uint8_t out[kChaChaBlockSize]) {
  std::uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = util::load_le32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = util::load_le32(nonce.data() + 4 * i);

  std::uint32_t w[16];
  std::memcpy(w, state, sizeof(w));
  for (int i = 0; i < 10; ++i) {
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) util::store_le32(out + 4 * i, w[i] + state[i]);
}

void chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t initial_counter, std::span<std::uint8_t> data) {
  std::uint8_t block[kChaChaBlockSize];
  std::uint32_t counter = initial_counter;
  std::size_t pos = 0;
  while (pos < data.size()) {
    chacha20_block(key, nonce, counter++, block);
    const std::size_t take = std::min(kChaChaBlockSize, data.size() - pos);
    for (std::size_t i = 0; i < take; ++i) data[pos + i] ^= block[i];
    pos += take;
  }
}

SecureRandom::SecureRandom(std::uint64_t seed) {
  std::uint8_t seed_bytes[8];
  util::store_be64(seed_bytes, seed);
  const Sha256Digest d = sha256(util::BytesView(seed_bytes, 8));
  std::memcpy(key_.data(), d.data(), kChaChaKeySize);
}

SecureRandom::SecureRandom(util::BytesView seed) {
  const Sha256Digest d = sha256(seed);
  std::memcpy(key_.data(), d.data(), kChaChaKeySize);
}

void SecureRandom::refill() {
  chacha20_block(key_, nonce_, counter_, buffer_.data());
  buffer_pos_ = 0;
  if (++counter_ == 0) {
    // Counter wrapped (after 256 GiB of output): roll the nonce.
    for (std::size_t i = 0; i < kChaChaNonceSize; ++i) {
      if (++nonce_[i] != 0) break;
    }
  }
}

void SecureRandom::fill(std::span<std::uint8_t> out) {
  std::size_t pos = 0;
  while (pos < out.size()) {
    if (buffer_pos_ == kChaChaBlockSize) refill();
    const std::size_t take =
        std::min(kChaChaBlockSize - buffer_pos_, out.size() - pos);
    std::memcpy(out.data() + pos, buffer_.data() + buffer_pos_, take);
    buffer_pos_ += take;
    pos += take;
  }
}

util::Bytes SecureRandom::bytes(std::size_t n) {
  util::Bytes out(n);
  fill(out);
  return out;
}

std::uint32_t SecureRandom::next_u32() {
  std::uint8_t b[4];
  fill(b);
  return util::load_be32(b);
}

std::uint64_t SecureRandom::next_u64() {
  std::uint8_t b[8];
  fill(b);
  return util::load_be64(b);
}

std::uint64_t SecureRandom::uniform(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

std::int64_t SecureRandom::uniform_range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double SecureRandom::uniform_real() {
  // 53 random bits → [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double SecureRandom::exponential(double rate) {
  double u;
  do {
    u = uniform_real();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

double SecureRandom::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u1;
  do {
    u1 = uniform_real();
  } while (u1 == 0.0);
  const double u2 = uniform_real();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return r * std::cos(theta);
}

double SecureRandom::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double SecureRandom::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool SecureRandom::chance(double p) { return uniform_real() < p; }

SecureRandom SecureRandom::fork() {
  return SecureRandom(util::BytesView(bytes(32)));
}

}  // namespace p2pdrm::crypto
