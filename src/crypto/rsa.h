// RSA with PKCS#1 v1.5-style padding, built on the BigUInt substrate.
//
// The DRM design uses RSA in four places:
//  - the User Manager signs User Tickets (certifying the client public key),
//  - the Channel Manager signs Channel Tickets,
//  - clients prove possession of their private key in the nonce challenges
//    of the login and channel-switch protocols,
//  - target peers encrypt the per-link session key with the joining client's
//    public key.
//
// Key size is a parameter: tests default to 512-bit keys so suites run fast;
// 1024/2048-bit keys work and are exercised by dedicated tests and benches.
#pragma once

#include <optional>

#include "crypto/bignum.h"
#include "crypto/sha256.h"
#include "util/bytes.h"

namespace p2pdrm::crypto {

struct RsaPublicKey {
  BigUInt n;
  BigUInt e;

  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  /// Wire encoding (length-prefixed n and e).
  util::Bytes encode() const;
  static RsaPublicKey decode(util::BytesView data);

  /// SHA-256 of the encoding; used as a stable key identity.
  Sha256Digest fingerprint() const;

  friend bool operator==(const RsaPublicKey&, const RsaPublicKey&) = default;
};

struct RsaPrivateKey {
  BigUInt n, e, d;
  // CRT components.
  BigUInt p, q, dp, dq, qinv;

  RsaPublicKey public_key() const { return {n, e}; }
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  /// c^d mod n via CRT.
  BigUInt private_op(const BigUInt& c) const;
};

struct RsaKeyPair {
  RsaPrivateKey priv;
  RsaPublicKey pub;
};

/// Generate an RSA key pair with an n of exactly `bits` bits (e = 65537).
/// bits must be >= 256 (the padding needs room for a SHA-256 digest).
RsaKeyPair generate_rsa_keypair(SecureRandom& rng, std::size_t bits);

/// PKCS#1 v1.5 block type 2 encryption. msg must be at most
/// modulus_bytes - 11 bytes. Throws std::invalid_argument otherwise.
util::Bytes rsa_encrypt(const RsaPublicKey& pub, util::BytesView msg,
                        SecureRandom& rng);

/// Decrypt; returns std::nullopt when the padding check fails (wrong key or
/// corrupted ciphertext).
std::optional<util::Bytes> rsa_decrypt(const RsaPrivateKey& priv,
                                       util::BytesView ciphertext);

/// Sign SHA-256(msg) with block type 1 padding and a DigestInfo-style prefix.
util::Bytes rsa_sign(const RsaPrivateKey& priv, util::BytesView msg);

/// Verify a signature produced by rsa_sign.
bool rsa_verify(const RsaPublicKey& pub, util::BytesView msg,
                util::BytesView signature);

}  // namespace p2pdrm::crypto
