// SHA-256 (FIPS 180-4), implemented from scratch. Used for ticket digests,
// RSA signature padding, password hashing (the paper's "secure hash of the
// user's password"), and the attestation checksum.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace p2pdrm::crypto {

constexpr std::size_t kSha256DigestSize = 32;
constexpr std::size_t kSha256BlockSize = 64;

using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256. Typical use:
///   Sha256 h; h.update(a); h.update(b); auto d = h.finish();
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(util::BytesView data);
  /// Finalizes and returns the digest. The object must be reset() before
  /// being reused.
  Sha256Digest finish();

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kSha256BlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot convenience.
Sha256Digest sha256(util::BytesView data);

/// Digest as a Bytes buffer (for wire structures that carry digests).
util::Bytes sha256_bytes(util::BytesView data);

}  // namespace p2pdrm::crypto
