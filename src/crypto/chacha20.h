// ChaCha20 (RFC 8439 block function) and a DRBG built on it. The DRBG is the
// single source of randomness for the whole system — nonces, keys, RSA prime
// candidates, simulator randomness — so a run seeded with a fixed value is
// reproducible bit-for-bit.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace p2pdrm::crypto {

constexpr std::size_t kChaChaKeySize = 32;
constexpr std::size_t kChaChaNonceSize = 12;
constexpr std::size_t kChaChaBlockSize = 64;

using ChaChaKey = std::array<std::uint8_t, kChaChaKeySize>;
using ChaChaNonce = std::array<std::uint8_t, kChaChaNonceSize>;

/// Compute one 64-byte ChaCha20 keystream block.
void chacha20_block(const ChaChaKey& key, const ChaChaNonce& nonce,
                    std::uint32_t counter, std::uint8_t out[kChaChaBlockSize]);

/// XOR the ChaCha20 keystream into data (encrypt == decrypt).
void chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t initial_counter, std::span<std::uint8_t> data);

/// Deterministic random bit generator running ChaCha20 in counter mode.
/// Also exposes the convenience integer/real draws the simulator and
/// workload generator need.
class SecureRandom {
 public:
  /// Seed from a 64-bit value (expanded through SHA-256).
  explicit SecureRandom(std::uint64_t seed);
  /// Seed from arbitrary bytes.
  explicit SecureRandom(util::BytesView seed);

  void fill(std::span<std::uint8_t> out);
  util::Bytes bytes(std::size_t n);

  std::uint32_t next_u32();
  std::uint64_t next_u64();

  /// Uniform in [0, bound) with rejection sampling (bound must be > 0).
  std::uint64_t uniform(std::uint64_t bound);
  /// Uniform in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);
  /// Uniform real in [0, 1).
  double uniform_real();
  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);
  /// Standard normal via Box-Muller.
  double normal();
  double normal(double mean, double stddev);
  /// Lognormal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Bernoulli trial.
  bool chance(double p);

  /// Split off an independent child generator (for per-node streams).
  SecureRandom fork();

 private:
  void refill();

  ChaChaKey key_{};
  ChaChaNonce nonce_{};
  std::uint32_t counter_ = 0;
  std::array<std::uint8_t, kChaChaBlockSize> buffer_{};
  std::size_t buffer_pos_ = kChaChaBlockSize;
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace p2pdrm::crypto
