// HMAC-SHA-256 (RFC 2104). Used for the attestation checksum and for
// key-derivation in the session-key handshake.
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace p2pdrm::crypto {

/// Incremental HMAC-SHA-256.
class HmacSha256 {
 public:
  explicit HmacSha256(util::BytesView key);

  void update(util::BytesView data);
  Sha256Digest finish();

 private:
  Sha256 inner_;
  std::array<std::uint8_t, kSha256BlockSize> opad_key_;
};

/// One-shot convenience.
Sha256Digest hmac_sha256(util::BytesView key, util::BytesView data);

/// Simple HKDF-like expansion: derive `out_len` bytes from (key, label).
/// out = HMAC(key, label || 0x01) || HMAC(key, prev || label || 0x02) || ...
util::Bytes derive_key(util::BytesView key, util::BytesView label, std::size_t out_len);

}  // namespace p2pdrm::crypto
