// AES-128 (FIPS 197) block cipher plus CTR mode, implemented from scratch.
// This is the paper's "light-weight rotating symmetric key encryption": the
// Channel Server encrypts the live stream with an AES-128 content key that
// rotates every minute, and per-link session keys wrap the content keys in
// transit. Table-based implementation; not hardened against cache-timing —
// fine for a reproduction.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace p2pdrm::crypto {

constexpr std::size_t kAesBlockSize = 16;
constexpr std::size_t kAesKeySize = 16;

using AesKey = std::array<std::uint8_t, kAesKeySize>;
using AesBlock = std::array<std::uint8_t, kAesBlockSize>;

/// AES-128 with a precomputed key schedule.
class Aes128 {
 public:
  explicit Aes128(const AesKey& key);

  /// Encrypt/decrypt one 16-byte block (out may alias in).
  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const;
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const;

 private:
  std::array<std::uint32_t, 44> round_keys_;      // encryption schedule
  std::array<std::uint32_t, 44> dec_round_keys_;  // decryption schedule
};

/// AES-128-CTR keystream cipher. Encryption and decryption are the same
/// operation. The counter block is nonce(8 bytes) || big-endian block index,
/// so a (key, nonce) pair must not be reused for different plaintexts —
/// content keys rotate and each carries a fresh nonce.
class AesCtr {
 public:
  AesCtr(const AesKey& key, std::uint64_t nonce);

  /// XOR the keystream starting at byte `offset` into data (in place).
  /// Random access: any offset may be processed in any order.
  void crypt(std::span<std::uint8_t> data, std::uint64_t offset = 0) const;

  /// Convenience: returns the transformed copy.
  util::Bytes crypt_copy(util::BytesView data, std::uint64_t offset = 0) const;

 private:
  Aes128 cipher_;
  std::uint64_t nonce_;
};

}  // namespace p2pdrm::crypto
