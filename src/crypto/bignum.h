// Arbitrary-precision unsigned integers, from scratch, sized for RSA:
// schoolbook multiply, Knuth algorithm-D division, Montgomery modular
// exponentiation, extended-Euclid inverse. Limbs are 32-bit with 64-bit
// intermediates so the code is portable and easy to audit.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace p2pdrm::crypto {

class SecureRandom;
struct DivModResult;

class BigUInt {
 public:
  /// Zero.
  BigUInt() = default;
  BigUInt(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal convenience

  /// Big-endian byte-string decode (leading zeros allowed).
  static BigUInt from_bytes_be(util::BytesView bytes);
  /// Hex decode (no 0x prefix, case-insensitive). Throws on bad input.
  static BigUInt from_hex(std::string_view hex);
  /// Uniform random integer with exactly `bits` bits (top bit set).
  static BigUInt random_with_bits(SecureRandom& rng, std::size_t bits);
  /// Uniform random integer in [0, bound).
  static BigUInt random_below(SecureRandom& rng, const BigUInt& bound);

  /// Big-endian encoding, left-padded with zeros to at least min_len bytes.
  util::Bytes to_bytes_be(std::size_t min_len = 0) const;
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_even() const { return !is_odd(); }
  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;
  /// Value of bit i (LSB = bit 0).
  bool bit(std::size_t i) const;
  /// Low 64 bits.
  std::uint64_t low_u64() const;

  friend bool operator==(const BigUInt& a, const BigUInt& b) = default;
  friend std::strong_ordering operator<=>(const BigUInt& a, const BigUInt& b);

  BigUInt operator+(const BigUInt& rhs) const;
  /// Subtraction; throws std::underflow_error if rhs > *this.
  BigUInt operator-(const BigUInt& rhs) const;
  BigUInt operator*(const BigUInt& rhs) const;
  BigUInt operator/(const BigUInt& rhs) const;
  BigUInt operator%(const BigUInt& rhs) const;
  BigUInt operator<<(std::size_t n) const;
  BigUInt operator>>(std::size_t n) const;

  BigUInt& operator+=(const BigUInt& rhs) { return *this = *this + rhs; }
  BigUInt& operator-=(const BigUInt& rhs) { return *this = *this - rhs; }

  /// Quotient and remainder in one pass. Throws std::domain_error on /0.
  static DivModResult divmod(const BigUInt& u, const BigUInt& v);

  /// Remainder modulo a 32-bit value (fast path for trial division).
  std::uint32_t mod_u32(std::uint32_t m) const;

  /// (base ^ exp) mod m. Uses Montgomery multiplication when m is odd,
  /// plain square-and-multiply with division otherwise. m must be >= 2.
  static BigUInt mod_pow(const BigUInt& base, const BigUInt& exp, const BigUInt& m);

  /// Greatest common divisor.
  static BigUInt gcd(BigUInt a, BigUInt b);

  /// Modular inverse of a mod m; throws std::domain_error if gcd(a,m) != 1.
  static BigUInt mod_inverse(const BigUInt& a, const BigUInt& m);

 private:
  void trim();
  static BigUInt add_impl(const BigUInt& a, const BigUInt& b);
  static BigUInt sub_impl(const BigUInt& a, const BigUInt& b);

  // Little-endian limbs, most significant limb last, no trailing zeros.
  std::vector<std::uint32_t> limbs_;

  friend class Montgomery;
};

struct DivModResult {
  BigUInt quotient;
  BigUInt remainder;
};

/// Montgomery reduction context for a fixed odd modulus. Exposed so RSA can
/// reuse one context across many exponentiations with the same modulus.
class Montgomery {
 public:
  /// mod must be odd and >= 3.
  explicit Montgomery(const BigUInt& mod);

  /// (base ^ exp) mod n.
  BigUInt pow(const BigUInt& base, const BigUInt& exp) const;

  const BigUInt& modulus() const { return n_; }

 private:
  std::vector<std::uint32_t> mul(const std::vector<std::uint32_t>& a,
                                 const std::vector<std::uint32_t>& b) const;
  std::vector<std::uint32_t> to_mont(const BigUInt& x) const;
  BigUInt from_mont(std::vector<std::uint32_t> x) const;

  BigUInt n_;
  std::size_t k_;           // limb count of n
  std::uint32_t n_prime_;   // -n^{-1} mod 2^32
  BigUInt r2_;              // R^2 mod n, R = 2^(32k)
};

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
bool is_probable_prime(const BigUInt& n, SecureRandom& rng, int rounds = 24);

/// Generate a random prime with exactly `bits` bits.
BigUInt generate_prime(SecureRandom& rng, std::size_t bits);

}  // namespace p2pdrm::crypto
