#include "crypto/rsa.h"

#include <stdexcept>

#include "crypto/chacha20.h"
#include "util/wire.h"

namespace p2pdrm::crypto {

namespace {

// Identifies the hash inside a type-1 signature block, in the spirit of
// PKCS#1 DigestInfo (not ASN.1; this system controls both ends of the wire).
constexpr std::uint8_t kSha256Prefix[4] = {'S', '2', '5', '6'};

}  // namespace

util::Bytes RsaPublicKey::encode() const {
  util::WireWriter w;
  w.bytes(n.to_bytes_be());
  w.bytes(e.to_bytes_be());
  return w.take();
}

RsaPublicKey RsaPublicKey::decode(util::BytesView data) {
  util::WireReader r(data);
  RsaPublicKey out;
  out.n = BigUInt::from_bytes_be(r.bytes());
  out.e = BigUInt::from_bytes_be(r.bytes());
  return out;
}

Sha256Digest RsaPublicKey::fingerprint() const { return sha256(encode()); }

BigUInt RsaPrivateKey::private_op(const BigUInt& c) const {
  // CRT: m1 = c^dp mod p, m2 = c^dq mod q,
  //      h = qinv (m1 - m2) mod p, m = m2 + h q.
  const BigUInt m1 = BigUInt::mod_pow(c % p, dp, p);
  const BigUInt m2 = BigUInt::mod_pow(c % q, dq, q);
  const BigUInt m2p = m2 % p;
  const BigUInt diff = (m1 >= m2p) ? (m1 - m2p) : (m1 + p - m2p);
  const BigUInt h = (qinv * diff) % p;
  return m2 + h * q;
}

RsaKeyPair generate_rsa_keypair(SecureRandom& rng, std::size_t bits) {
  if (bits < 256) throw std::invalid_argument("generate_rsa_keypair: bits < 256");
  const BigUInt e(65537);
  for (;;) {
    BigUInt p = generate_prime(rng, bits / 2);
    BigUInt q = generate_prime(rng, bits - bits / 2);
    if (p == q) continue;
    if (p < q) std::swap(p, q);

    const BigUInt n = p * q;
    if (n.bit_length() != bits) continue;

    const BigUInt p1 = p - BigUInt(1);
    const BigUInt q1 = q - BigUInt(1);
    const BigUInt phi = p1 * q1;
    if (BigUInt::gcd(e, phi) != BigUInt(1)) continue;

    RsaPrivateKey priv;
    priv.n = n;
    priv.e = e;
    priv.d = BigUInt::mod_inverse(e, phi);
    priv.p = p;
    priv.q = q;
    priv.dp = priv.d % p1;
    priv.dq = priv.d % q1;
    priv.qinv = BigUInt::mod_inverse(q, p);
    return {priv, priv.public_key()};
  }
}

util::Bytes rsa_encrypt(const RsaPublicKey& pub, util::BytesView msg,
                        SecureRandom& rng) {
  const std::size_t k = pub.modulus_bytes();
  if (msg.size() + 11 > k) {
    throw std::invalid_argument("rsa_encrypt: message too long for modulus");
  }
  // EB = 00 || 02 || nonzero-random-pad || 00 || msg
  util::Bytes eb(k);
  eb[0] = 0x00;
  eb[1] = 0x02;
  const std::size_t pad_len = k - 3 - msg.size();
  for (std::size_t i = 0; i < pad_len; ++i) {
    std::uint8_t b;
    do {
      b = static_cast<std::uint8_t>(rng.next_u32());
    } while (b == 0);
    eb[2 + i] = b;
  }
  eb[2 + pad_len] = 0x00;
  std::copy(msg.begin(), msg.end(), eb.begin() + static_cast<std::ptrdiff_t>(3 + pad_len));

  const BigUInt m = BigUInt::from_bytes_be(eb);
  const BigUInt c = BigUInt::mod_pow(m, pub.e, pub.n);
  return c.to_bytes_be(k);
}

std::optional<util::Bytes> rsa_decrypt(const RsaPrivateKey& priv,
                                       util::BytesView ciphertext) {
  const std::size_t k = priv.modulus_bytes();
  if (ciphertext.size() != k) return std::nullopt;
  const BigUInt c = BigUInt::from_bytes_be(ciphertext);
  if (c >= priv.n) return std::nullopt;
  const util::Bytes eb = priv.private_op(c).to_bytes_be(k);

  if (eb.size() < 11 || eb[0] != 0x00 || eb[1] != 0x02) return std::nullopt;
  // Find the 0x00 separator after at least 8 pad bytes.
  std::size_t sep = 0;
  for (std::size_t i = 2; i < eb.size(); ++i) {
    if (eb[i] == 0x00) {
      sep = i;
      break;
    }
  }
  if (sep < 10) return std::nullopt;
  return util::Bytes(eb.begin() + static_cast<std::ptrdiff_t>(sep + 1), eb.end());
}

util::Bytes rsa_sign(const RsaPrivateKey& priv, util::BytesView msg) {
  const std::size_t k = priv.modulus_bytes();
  const Sha256Digest digest = sha256(msg);

  // EB = 00 || 01 || ff..ff || 00 || "S256" || digest
  const std::size_t payload = sizeof(kSha256Prefix) + digest.size();
  if (k < payload + 11) throw std::invalid_argument("rsa_sign: modulus too small");
  util::Bytes eb(k);
  eb[0] = 0x00;
  eb[1] = 0x01;
  const std::size_t pad_len = k - 3 - payload;
  for (std::size_t i = 0; i < pad_len; ++i) eb[2 + i] = 0xff;
  eb[2 + pad_len] = 0x00;
  std::copy(std::begin(kSha256Prefix), std::end(kSha256Prefix),
            eb.begin() + static_cast<std::ptrdiff_t>(3 + pad_len));
  std::copy(digest.begin(), digest.end(),
            eb.begin() + static_cast<std::ptrdiff_t>(3 + pad_len + sizeof(kSha256Prefix)));

  const BigUInt m = BigUInt::from_bytes_be(eb);
  return priv.private_op(m).to_bytes_be(k);
}

bool rsa_verify(const RsaPublicKey& pub, util::BytesView msg,
                util::BytesView signature) {
  const std::size_t k = pub.modulus_bytes();
  if (signature.size() != k) return false;
  const BigUInt s = BigUInt::from_bytes_be(signature);
  if (s >= pub.n) return false;
  const util::Bytes eb = BigUInt::mod_pow(s, pub.e, pub.n).to_bytes_be(k);

  const Sha256Digest digest = sha256(msg);
  const std::size_t payload = sizeof(kSha256Prefix) + digest.size();
  if (k < payload + 11) return false;
  if (eb[0] != 0x00 || eb[1] != 0x01) return false;
  const std::size_t pad_len = k - 3 - payload;
  for (std::size_t i = 0; i < pad_len; ++i) {
    if (eb[2 + i] != 0xff) return false;
  }
  if (eb[2 + pad_len] != 0x00) return false;
  util::Bytes expected(eb.begin() + static_cast<std::ptrdiff_t>(3 + pad_len), eb.end());
  util::Bytes actual(std::begin(kSha256Prefix), std::end(kSha256Prefix));
  actual.insert(actual.end(), digest.begin(), digest.end());
  return util::constant_time_equal(expected, actual);
}

}  // namespace p2pdrm::crypto
