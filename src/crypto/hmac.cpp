#include "crypto/hmac.h"

#include <cstring>

namespace p2pdrm::crypto {

HmacSha256::HmacSha256(util::BytesView key) {
  std::array<std::uint8_t, kSha256BlockSize> k{};
  if (key.size() > kSha256BlockSize) {
    const Sha256Digest d = sha256(key);
    std::memcpy(k.data(), d.data(), d.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kSha256BlockSize> ipad_key;
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad_key[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad_key_[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  inner_.update(ipad_key);
}

void HmacSha256::update(util::BytesView data) { inner_.update(data); }

Sha256Digest HmacSha256::finish() {
  const Sha256Digest inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(opad_key_);
  outer.update(inner_digest);
  return outer.finish();
}

Sha256Digest hmac_sha256(util::BytesView key, util::BytesView data) {
  HmacSha256 h(key);
  h.update(data);
  return h.finish();
}

util::Bytes derive_key(util::BytesView key, util::BytesView label, std::size_t out_len) {
  util::Bytes out;
  out.reserve(out_len);
  util::Bytes prev;
  std::uint8_t counter = 1;
  while (out.size() < out_len) {
    HmacSha256 h(key);
    h.update(prev);
    h.update(label);
    h.update(util::BytesView(&counter, 1));
    const Sha256Digest block = h.finish();
    prev.assign(block.begin(), block.end());
    const std::size_t take = std::min(prev.size(), out_len - out.size());
    out.insert(out.end(), prev.begin(), prev.begin() + static_cast<std::ptrdiff_t>(take));
    ++counter;
  }
  return out;
}

}  // namespace p2pdrm::crypto
