#include "crypto/bignum.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "crypto/chacha20.h"

namespace p2pdrm::crypto {

namespace {
constexpr std::uint64_t kBase = 1ull << 32;
}

BigUInt::BigUInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigUInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUInt BigUInt::from_bytes_be(util::BytesView bytes) {
  BigUInt out;
  out.limbs_.assign((bytes.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // bytes[size-1-i] is the i-th least significant byte.
    const std::uint8_t b = bytes[bytes.size() - 1 - i];
    out.limbs_[i / 4] |= static_cast<std::uint32_t>(b) << (8 * (i % 4));
  }
  out.trim();
  return out;
}

BigUInt BigUInt::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
  return from_bytes_be(util::from_hex(padded));
}

util::Bytes BigUInt::to_bytes_be(std::size_t min_len) const {
  util::Bytes out;
  const std::size_t nbytes = (bit_length() + 7) / 8;
  const std::size_t total = std::max(nbytes, min_len);
  out.assign(total, 0);
  for (std::size_t i = 0; i < nbytes; ++i) {
    out[total - 1 - i] =
        static_cast<std::uint8_t>(limbs_[i / 4] >> (8 * (i % 4)));
  }
  return out;
}

std::string BigUInt::to_hex() const {
  if (is_zero()) return "0";
  std::string s = util::to_hex(to_bytes_be());
  const std::size_t nz = s.find_first_not_of('0');
  return s.substr(nz);
}

std::size_t BigUInt::bit_length() const {
  if (limbs_.empty()) return 0;
  return 32 * (limbs_.size() - 1) +
         (32 - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

bool BigUInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

std::uint64_t BigUInt::low_u64() const {
  std::uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

std::strong_ordering operator<=>(const BigUInt& a, const BigUInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() <=> b.limbs_.size();
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] <=> b.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigUInt BigUInt::add_impl(const BigUInt& a, const BigUInt& b) {
  BigUInt out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigUInt BigUInt::sub_impl(const BigUInt& a, const BigUInt& b) {
  if (a < b) throw std::underflow_error("BigUInt: negative subtraction result");
  BigUInt out;
  out.limbs_.resize(a.limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.trim();
  return out;
}

BigUInt BigUInt::operator+(const BigUInt& rhs) const { return add_impl(*this, rhs); }
BigUInt BigUInt::operator-(const BigUInt& rhs) const { return sub_impl(*this, rhs); }

BigUInt BigUInt::operator*(const BigUInt& rhs) const {
  if (is_zero() || rhs.is_zero()) return BigUInt{};
  BigUInt out;
  out.limbs_.assign(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = limbs_[i];
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      const std::uint64_t cur = static_cast<std::uint64_t>(out.limbs_[i + j]) +
                                ai * rhs.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    out.limbs_[i + rhs.limbs_.size()] += static_cast<std::uint32_t>(carry);
  }
  out.trim();
  return out;
}

BigUInt BigUInt::operator<<(std::size_t n) const {
  if (is_zero() || n == 0) return *this;
  const std::size_t limb_shift = n / 32;
  const std::size_t bit_shift = n % 32;
  BigUInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |=
          static_cast<std::uint32_t>(limbs_[i] >> (32 - bit_shift));
    }
  }
  out.trim();
  return out;
}

BigUInt BigUInt::operator>>(std::size_t n) const {
  const std::size_t limb_shift = n / 32;
  if (limb_shift >= limbs_.size()) return BigUInt{};
  const std::size_t bit_shift = n % 32;
  BigUInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (32 - bit_shift);
    }
  }
  out.trim();
  return out;
}

DivModResult BigUInt::divmod(const BigUInt& u, const BigUInt& v) {
  if (v.is_zero()) throw std::domain_error("BigUInt: division by zero");
  if (u < v) return {BigUInt{}, u};

  // Single-limb divisor fast path.
  if (v.limbs_.size() == 1) {
    const std::uint64_t d = v.limbs_[0];
    BigUInt q;
    q.limbs_.assign(u.limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = u.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | u.limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {q, BigUInt(rem)};
  }

  // Knuth TAOCP vol. 2, algorithm D (adapted from Hacker's Delight divmnu).
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size();
  const int s = std::countl_zero(v.limbs_[n - 1]);

  std::vector<std::uint32_t> vn(n);
  for (std::size_t i = n; i-- > 1;) {
    vn[i] = (v.limbs_[i] << s) |
            (s ? static_cast<std::uint32_t>(
                     static_cast<std::uint64_t>(v.limbs_[i - 1]) >> (32 - s))
               : 0);
  }
  vn[0] = v.limbs_[0] << s;

  std::vector<std::uint32_t> un(m + 1);
  un[m] = s ? static_cast<std::uint32_t>(
                  static_cast<std::uint64_t>(u.limbs_[m - 1]) >> (32 - s))
            : 0;
  for (std::size_t i = m; i-- > 1;) {
    un[i] = (u.limbs_[i] << s) |
            (s ? static_cast<std::uint32_t>(
                     static_cast<std::uint64_t>(u.limbs_[i - 1]) >> (32 - s))
               : 0);
  }
  un[0] = u.limbs_[0] << s;

  BigUInt q;
  q.limbs_.assign(m - n + 1, 0);

  for (std::size_t j = m - n + 1; j-- > 0;) {
    std::uint64_t qhat =
        ((static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1]) /
        vn[n - 1];
    std::uint64_t rhat =
        ((static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1]) %
        vn[n - 1];
    while (qhat >= kBase ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) break;
    }

    // Multiply and subtract.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i] + carry;
      carry = p >> 32;
      const std::int64_t t = static_cast<std::int64_t>(un[i + j]) -
                             borrow -
                             static_cast<std::int64_t>(p & 0xffffffffull);
      un[i + j] = static_cast<std::uint32_t>(t);
      borrow = (t < 0) ? 1 : 0;
    }
    const std::int64_t t = static_cast<std::int64_t>(un[j + n]) - borrow -
                           static_cast<std::int64_t>(carry);
    un[j + n] = static_cast<std::uint32_t>(t);

    if (t < 0) {
      // qhat was one too large: add v back.
      --qhat;
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(un[i + j]) + vn[i] + c;
        un[i + j] = static_cast<std::uint32_t>(sum);
        c = sum >> 32;
      }
      un[j + n] = static_cast<std::uint32_t>(un[j + n] + c);
    }
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }

  BigUInt r;
  r.limbs_.assign(n, 0);
  for (std::size_t i = 0; i < n - 1; ++i) {
    r.limbs_[i] = (un[i] >> s) |
                  (s ? static_cast<std::uint32_t>(
                           static_cast<std::uint64_t>(un[i + 1]) << (32 - s))
                     : 0);
  }
  r.limbs_[n - 1] = un[n - 1] >> s;

  q.trim();
  r.trim();
  return {q, r};
}

BigUInt BigUInt::operator/(const BigUInt& rhs) const {
  return divmod(*this, rhs).quotient;
}

BigUInt BigUInt::operator%(const BigUInt& rhs) const {
  return divmod(*this, rhs).remainder;
}

std::uint32_t BigUInt::mod_u32(std::uint32_t m) const {
  if (m == 0) throw std::domain_error("BigUInt: mod by zero");
  std::uint64_t rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    rem = ((rem << 32) | limbs_[i]) % m;
  }
  return static_cast<std::uint32_t>(rem);
}

BigUInt BigUInt::mod_pow(const BigUInt& base, const BigUInt& exp, const BigUInt& m) {
  if (m < BigUInt(2)) throw std::domain_error("BigUInt: modulus must be >= 2");
  if (m.is_odd()) return Montgomery(m).pow(base, exp);

  // Rare even-modulus fallback: plain square-and-multiply.
  BigUInt result(1);
  BigUInt b = base % m;
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    result = (result * result) % m;
    if (exp.bit(i)) result = (result * b) % m;
  }
  return result;
}

BigUInt BigUInt::gcd(BigUInt a, BigUInt b) {
  while (!b.is_zero()) {
    BigUInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigUInt BigUInt::mod_inverse(const BigUInt& a, const BigUInt& m) {
  // Extended Euclid on (m, a mod m), tracking only the coefficient of a.
  // Signs are tracked separately since BigUInt is unsigned.
  BigUInt r0 = m, r1 = a % m;
  BigUInt t0, t1(1);
  bool t0_neg = false, t1_neg = false;

  while (!r1.is_zero()) {
    const DivModResult dm = divmod(r0, r1);
    // (t0, t1) <- (t1, t0 - q*t1)
    BigUInt qt = dm.quotient * t1;
    const bool qt_neg = t1_neg;
    BigUInt next_t;
    bool next_neg;
    if (t0_neg == qt_neg) {
      if (t0 >= qt) {
        next_t = t0 - qt;
        next_neg = t0_neg;
      } else {
        next_t = qt - t0;
        next_neg = !t0_neg;
      }
    } else {
      next_t = t0 + qt;
      next_neg = t0_neg;
    }
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(next_t);
    t1_neg = next_neg;
    r0 = std::move(r1);
    r1 = dm.remainder;
  }

  if (r0 != BigUInt(1)) {
    throw std::domain_error("BigUInt: mod_inverse of non-coprime value");
  }
  if (t0.is_zero()) return t0;
  return t0_neg ? (m - (t0 % m)) : (t0 % m);
}

BigUInt BigUInt::random_with_bits(SecureRandom& rng, std::size_t bits) {
  if (bits == 0) return BigUInt{};
  const std::size_t nbytes = (bits + 7) / 8;
  util::Bytes b = rng.bytes(nbytes);
  // Clear excess top bits, then set the top bit so the width is exact.
  const std::size_t top_bits = bits % 8 == 0 ? 8 : bits % 8;
  b[0] &= static_cast<std::uint8_t>(0xff >> (8 - top_bits));
  b[0] |= static_cast<std::uint8_t>(1 << (top_bits - 1));
  return from_bytes_be(b);
}

BigUInt BigUInt::random_below(SecureRandom& rng, const BigUInt& bound) {
  if (bound.is_zero()) throw std::domain_error("BigUInt: random_below(0)");
  const std::size_t bits = bound.bit_length();
  const std::size_t nbytes = (bits + 7) / 8;
  const std::size_t top_bits = bits % 8 == 0 ? 8 : bits % 8;
  for (;;) {
    util::Bytes b = rng.bytes(nbytes);
    b[0] &= static_cast<std::uint8_t>(0xff >> (8 - top_bits));
    BigUInt candidate = from_bytes_be(b);
    if (candidate < bound) return candidate;
  }
}

// ---------------------------------------------------------------------------
// Montgomery

Montgomery::Montgomery(const BigUInt& mod) : n_(mod), k_(mod.limbs_.size()) {
  if (mod.is_even() || mod < BigUInt(3)) {
    throw std::domain_error("Montgomery: modulus must be odd and >= 3");
  }
  // n' = -n^{-1} mod 2^32 by Newton iteration (converges in 5 steps).
  const std::uint32_t n0 = mod.limbs_[0];
  std::uint32_t inv = 1;
  for (int i = 0; i < 5; ++i) inv *= 2 - n0 * inv;
  n_prime_ = ~inv + 1;  // == -inv mod 2^32

  // R^2 mod n with R = 2^(32k).
  r2_ = (BigUInt(1) << (64 * k_)) % n_;
}

std::vector<std::uint32_t> Montgomery::mul(const std::vector<std::uint32_t>& a,
                                           const std::vector<std::uint32_t>& b) const {
  // CIOS Montgomery multiplication: result = a*b*R^{-1} mod n.
  std::vector<std::uint32_t> t(k_ + 2, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    const std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < k_; ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(t[j]) + ai * b[j] + carry;
      t[j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::uint64_t cur = static_cast<std::uint64_t>(t[k_]) + carry;
    t[k_] = static_cast<std::uint32_t>(cur);
    t[k_ + 1] = static_cast<std::uint32_t>(t[k_ + 1] + (cur >> 32));

    // m = t[0] * n' mod 2^32; t += m * n; t >>= 32
    const std::uint32_t m =
        static_cast<std::uint32_t>(t[0] * static_cast<std::uint64_t>(n_prime_));
    carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const std::uint64_t cur2 = static_cast<std::uint64_t>(t[j]) +
                                 static_cast<std::uint64_t>(m) * n_.limbs_[j] +
                                 carry;
      t[j] = static_cast<std::uint32_t>(cur2);
      carry = cur2 >> 32;
    }
    cur = static_cast<std::uint64_t>(t[k_]) + carry;
    t[k_] = static_cast<std::uint32_t>(cur);
    t[k_ + 1] = static_cast<std::uint32_t>(t[k_ + 1] + (cur >> 32));

    for (std::size_t j = 0; j <= k_; ++j) t[j] = t[j + 1];
    t[k_ + 1] = 0;
  }

  std::vector<std::uint32_t> result(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(k_));
  // Conditional subtraction if result >= n (t[k_] holds a possible carry).
  bool ge = t[k_] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = k_; i-- > 0;) {
      if (result[i] != n_.limbs_[i]) {
        ge = result[i] > n_.limbs_[i];
        break;
      }
    }
  }
  if (ge) {
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      std::int64_t diff = static_cast<std::int64_t>(result[i]) -
                          static_cast<std::int64_t>(n_.limbs_[i]) - borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      result[i] = static_cast<std::uint32_t>(diff);
    }
  }
  return result;
}

std::vector<std::uint32_t> Montgomery::to_mont(const BigUInt& x) const {
  BigUInt reduced = x % n_;
  std::vector<std::uint32_t> xl = reduced.limbs_;
  xl.resize(k_, 0);
  std::vector<std::uint32_t> r2l = r2_.limbs_;
  r2l.resize(k_, 0);
  return mul(xl, r2l);
}

BigUInt Montgomery::from_mont(std::vector<std::uint32_t> x) const {
  std::vector<std::uint32_t> one(k_, 0);
  one[0] = 1;
  BigUInt out;
  out.limbs_ = mul(x, one);
  out.trim();
  return out;
}

BigUInt Montgomery::pow(const BigUInt& base, const BigUInt& exp) const {
  if (exp.is_zero()) return BigUInt(1) % n_;
  const std::vector<std::uint32_t> base_m = to_mont(base);
  std::vector<std::uint32_t> result = to_mont(BigUInt(1));
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    result = mul(result, result);
    if (exp.bit(i)) result = mul(result, base_m);
  }
  return from_mont(std::move(result));
}

// ---------------------------------------------------------------------------
// Primality

namespace {

/// Primes below 2000, for trial division before Miller–Rabin.
const std::vector<std::uint32_t>& small_primes() {
  static const std::vector<std::uint32_t> primes = [] {
    std::vector<std::uint32_t> out;
    std::vector<bool> sieve(2000, true);
    for (std::uint32_t p = 2; p < 2000; ++p) {
      if (!sieve[p]) continue;
      out.push_back(p);
      for (std::uint32_t q = p * p; q < 2000; q += p) sieve[q] = false;
    }
    return out;
  }();
  return primes;
}

}  // namespace

bool is_probable_prime(const BigUInt& n, SecureRandom& rng, int rounds) {
  if (n < BigUInt(2)) return false;
  for (std::uint32_t p : small_primes()) {
    if (n == BigUInt(p)) return true;
    if (n.mod_u32(p) == 0) return false;
  }

  // Write n-1 = d * 2^r.
  const BigUInt n_minus_1 = n - BigUInt(1);
  BigUInt d = n_minus_1;
  std::size_t r = 0;
  while (d.is_even()) {
    d = d >> 1;
    ++r;
  }

  const Montgomery mont(n);
  const BigUInt n_minus_3 = n - BigUInt(3);
  for (int round = 0; round < rounds; ++round) {
    const BigUInt a = BigUInt::random_below(rng, n_minus_3) + BigUInt(2);
    BigUInt x = mont.pow(a, d);
    if (x == BigUInt(1) || x == n_minus_1) continue;
    bool composite = true;
    for (std::size_t i = 1; i < r; ++i) {
      x = (x * x) % n;
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigUInt generate_prime(SecureRandom& rng, std::size_t bits) {
  if (bits < 8) throw std::domain_error("generate_prime: need >= 8 bits");
  for (;;) {
    BigUInt candidate = BigUInt::random_with_bits(rng, bits);
    if (candidate.is_even()) candidate += BigUInt(1);
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

}  // namespace p2pdrm::crypto
