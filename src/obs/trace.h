// Deterministic protocol-round tracing.
//
// A Span is one timed piece of work — a client's LOGIN1 exchange, one
// transmission attempt within it, the farm instance serving the request, a
// packet's flight across the simulated network — with a parent link, so one
// protocol round traces end-to-end from the AsyncClient through retransmits
// and hops to the manager that answered. Spans carry ordered key=value tags
// and instant events (retransmissions, injected drops).
//
// All timestamps come from the simulation clock, span ids are assigned in
// creation order, and tags/events keep insertion order, so two runs of the
// same seed export byte-identical traces (asserted by test).
//
// Thread safety: every operation takes the tracer's mutex, so spans opened
// from different transport loops interleave safely (their *order* is then
// scheduling-dependent — byte-identical traces are a SimTransport property).
// spans() and find() hand out references into the span log and are for
// quiescent use only (exports and assertions after the run).
//
// The request-binding table is how spans link up across components without
// touching the wire format: the client binds its in-flight attempt span
// under (node, request id); the network and the serving node look the
// binding up from the envelope they already parse.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/time.h"

namespace p2pdrm::obs {

/// Index+1 into the tracer's span log; 0 = "no span" (every operation on
/// span 0 is a no-op, so call sites need no null checks).
using SpanId = std::uint64_t;

struct SpanEvent {
  util::SimTime at = 0;
  std::string name;
  std::string detail;
};

struct Span {
  SpanId id = 0;
  SpanId parent = 0;
  std::string category;  // "client" | "server" | "net"
  std::string name;      // "LOGIN1", "serve login1-req", "hop content", ...
  std::uint64_t actor = 0;  // node id of the component doing the work
  util::SimTime start = 0;
  util::SimTime end = 0;
  bool open = true;
  bool ok = true;
  std::vector<std::pair<std::string, std::string>> tags;
  std::vector<SpanEvent> events;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(Tracer&& other) noexcept;
  Tracer& operator=(Tracer&& other) noexcept;

  SpanId begin_span(std::string category, std::string name, std::uint64_t actor,
                    util::SimTime now, SpanId parent = 0);
  void tag(SpanId span, std::string key, std::string value);
  void event(SpanId span, util::SimTime now, std::string name,
             std::string detail = {});
  void end_span(SpanId span, util::SimTime now, bool ok = true);

  // --- request correlation (client node, request id) -> in-flight span ---

  void bind_request(std::uint64_t actor, std::uint64_t request_id, SpanId span);
  /// 0 when nothing is bound.
  SpanId bound_request(std::uint64_t actor, std::uint64_t request_id) const;
  void unbind_request(std::uint64_t actor, std::uint64_t request_id);

  // --- inspection / export (quiescent use only) ---

  const std::vector<Span>& spans() const { return spans_; }
  const Span* find(SpanId span) const;
  std::size_t open_spans() const;

  /// Hard cap on retained spans; begin_span beyond it returns 0 and counts
  /// the drop (long content-heavy runs stay bounded in memory).
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;
  std::uint64_t spans_dropped() const;

  void clear();

  /// Append every span of `other` (consumed) to this tracer, remapping span
  /// ids and parent links past the spans already held, so a coordinator can
  /// stitch per-shard tracers into one log in shard-index order. Spans past
  /// this tracer's capacity are dropped and counted, same as begin_span;
  /// `other`'s drop count carries over. Quiescent use only — callers merge
  /// after the shards have stopped, so request bindings are not carried.
  void absorb(Tracer&& other);

 private:
  Span* mutable_span(SpanId span);

  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, SpanId> inflight_;
  std::size_t capacity_ = 1u << 20;
  std::uint64_t dropped_ = 0;
};

}  // namespace p2pdrm::obs
