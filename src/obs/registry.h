// Metrics registry: named counters, gauges, and log-bucketed latency
// histograms, created on first use and held for the registry's lifetime.
//
// The registry is the one place an operator dashboard (or a bench harness)
// scrapes; components hold plain references to their metrics, so the hot
// path is a single integer bump. Names are free-form dotted strings
// ("net.packets.sent"); *families* are labelled counter sets rendered as
// "family{label}" ("um.login1{ok}", "um.login1{access-denied}") — the shape
// per-DrmError operational counters use. Iteration order is the map's
// lexicographic name order, so every rendering is deterministic.
//
// Thread safety: Counter and Gauge are atomics (relaxed — they are
// statistics, not synchronization), LatencyHistogram has its own mutex, and
// the registry's find-or-create/lookup/dump paths take the registry mutex.
// References handed out stay valid (node-based map storage), so the hot
// path never touches the registry lock. The raw counters()/gauges()/
// histograms() map accessors are the one exception: they expose the map
// itself and must only be iterated when no thread is *creating* metrics
// (scrapes after a run, or steady-state where all names already exist).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace p2pdrm::obs {

class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other)
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge& other)
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  Gauge& operator=(const Gauge& other) {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// Raise the gauge to v if v is larger (atomic high-water mark).
  void set_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry& other);
  Registry& operator=(const Registry& other);

  /// Find-or-create. References stay valid for the registry's lifetime
  /// (node-based map storage).
  Counter& counter(const std::string& name);
  /// Labelled member of a counter family, stored as "family{label}".
  Counter& counter(const std::string& family, const std::string& label);
  Gauge& gauge(const std::string& name);
  /// Labelled member of a gauge family, stored as "family{label}" — the
  /// shape per-instance dimensions use ("server.queue.depth{3}").
  Gauge& gauge(const std::string& family, const std::string& label);
  LatencyHistogram& histogram(const std::string& name);

  /// Read-only lookups: nullptr when the metric was never created.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const LatencyHistogram* find_histogram(const std::string& name) const;

  /// A family's members in label order: (label, counter) pairs.
  std::vector<std::pair<std::string, const Counter*>> family(
      const std::string& family) const;

  /// Raw map access — iterate only when no thread is creating metrics.
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, LatencyHistogram>& histograms() const {
    return histograms_;
  }

  /// Zero every metric; names stay registered (references stay valid).
  void reset();

  /// Fold another registry into this one: counters add, gauges take the
  /// maximum (every gauge the sim publishes is a high-water mark), and
  /// histograms bucket-add. Metrics only present in `other` are created
  /// here. Merging the per-shard registries in shard-index order gives the
  /// same bytes regardless of how shards were scheduled onto threads.
  void merge_from(const Registry& other);

  /// Deterministic "name=value" dump, one metric per line; histograms
  /// render count/p50/p95/p99.
  std::string to_string() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
};

}  // namespace p2pdrm::obs
