// Metrics registry: named counters, gauges, and log-bucketed latency
// histograms, created on first use and held for the registry's lifetime.
//
// The registry is the one place an operator dashboard (or a bench harness)
// scrapes; components hold plain references to their metrics, so the hot
// path is a single integer bump. Names are free-form dotted strings
// ("net.packets.sent"); *families* are labelled counter sets rendered as
// "family{label}" ("um.login1{ok}", "um.login1{access-denied}") — the shape
// per-DrmError operational counters use. Iteration order is the map's
// lexicographic name order, so every rendering is deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace p2pdrm::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void add(std::int64_t delta) { value_ += delta; }
  std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

class Registry {
 public:
  /// Find-or-create. References stay valid for the registry's lifetime
  /// (node-based map storage).
  Counter& counter(const std::string& name);
  /// Labelled member of a counter family, stored as "family{label}".
  Counter& counter(const std::string& family, const std::string& label);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  /// Read-only lookups: nullptr when the metric was never created.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const LatencyHistogram* find_histogram(const std::string& name) const;

  /// A family's members in label order: (label, counter) pairs.
  std::vector<std::pair<std::string, const Counter*>> family(
      const std::string& family) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, LatencyHistogram>& histograms() const {
    return histograms_;
  }

  /// Zero every metric; names stay registered (references stay valid).
  void reset();

  /// Deterministic "name=value" dump, one metric per line; histograms
  /// render count/p50/p95/p99.
  std::string to_string() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
};

}  // namespace p2pdrm::obs
