#include "obs/runtime.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string_view>

#include "obs/export.h"
#include "obs/trace.h"

namespace p2pdrm::obs {

namespace {

/// Raise a counter to `target` without ever decrementing: repeated exports
/// of a monotonically growing source stay idempotent.
void counter_to(Counter& counter, std::uint64_t target) {
  const std::uint64_t current = counter.value();
  if (target > current) counter.inc(target - current);
}

}  // namespace

void export_loop_stats(Registry& registry, const std::string& prefix,
                       const std::vector<LoopStats>& loops,
                       const LatencyHistogram* sched_latency) {
  for (std::size_t i = 0; i < loops.size(); ++i) {
    const LoopStats& ls = loops[i];
    const std::string label = std::to_string(i);
    counter_to(registry.counter(prefix + ".loop.tasks", label), ls.tasks);
    counter_to(registry.counter(prefix + ".loop.timers_fired", label),
               ls.timers_fired);
    registry.gauge(prefix + ".loop.busy_us", label).set(ls.busy_us);
    registry.gauge(prefix + ".loop.idle_us", label).set(ls.idle_us);
    registry.gauge(prefix + ".loop.ready_peak", label).set_max(ls.ready_peak);
    registry.gauge(prefix + ".loop.timer_peak", label).set_max(ls.timer_peak);
    registry.gauge(prefix + ".loop.utilization_permille", label)
        .set(static_cast<std::int64_t>(ls.utilization() * 1000.0));
  }
  if (sched_latency != nullptr) {
    registry.histogram(prefix + ".sched_latency_us") = *sched_latency;
  }
}

bool metric_name_ok(const std::string& name) {
  std::string base = name;
  const std::size_t brace = base.find('{');
  if (brace != std::string::npos) {
    if (brace == 0 || base.back() != '}') return false;
    const std::string label = base.substr(brace + 1, base.size() - brace - 2);
    if (label.empty()) return false;
    for (const char c : label) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                      c == '.' || c == ':';
      if (!ok) return false;
    }
    base.resize(brace);
  }
  if (base.empty() || base.front() == '.' || base.back() == '.') return false;
  bool first_segment = true;
  std::size_t start = 0;
  while (start <= base.size()) {
    const std::size_t dot = base.find('.', start);
    const std::size_t end = dot == std::string::npos ? base.size() : dot;
    if (end == start) return false;  // empty segment ("a..b")
    bool all_digits = true;
    for (std::size_t i = start; i < end; ++i) {
      const char c = base[i];
      if (c < '0' || c > '9') all_digits = false;
      if (first_segment) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
        if (!ok) return false;
      } else {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        if (!ok) return false;
      }
    }
    if (all_digits) return false;  // instance index belongs in a label
    if (first_segment && (base[start] < 'a' || base[start] > 'z')) return false;
    first_segment = false;
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Profiler

namespace {

struct ThreadCache {
  const void* owner = nullptr;
  std::uint64_t generation = 0;
  void* log = nullptr;
};
thread_local ThreadCache tl_profiler_cache;

}  // namespace

Profiler& Profiler::global() {
  static Profiler instance;
  return instance;
}

std::string Profiler::enable_global_from_env(const char* env) {
  const char* value = std::getenv(env);
  if (value == nullptr || value[0] == '\0') return {};
  global().enable();
  return value;
}

Profiler::ThreadLog* Profiler::log_for_current_thread(
    const char* fallback_label) {
  ThreadCache& cache = tl_profiler_cache;
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (cache.owner == this && cache.generation == gen) {
    return static_cast<ThreadLog*>(cache.log);
  }
  std::lock_guard<std::mutex> lk(mu_);
  logs_.push_back(std::make_unique<ThreadLog>());
  ThreadLog* log = logs_.back().get();
  log->label = fallback_label != nullptr && fallback_label[0] != '\0'
                   ? fallback_label
                   : "thread-" + std::to_string(logs_.size() - 1);
  cache.owner = this;
  cache.generation = gen;
  cache.log = log;
  return log;
}

void Profiler::attach_thread(const std::string& label) {
  if (!enabled()) return;
  ThreadLog* log = log_for_current_thread(label.c_str());
  log->label = label;
}

void Profiler::begin(const char* name) {
  if (!enabled()) return;
  ThreadLog* log = log_for_current_thread(nullptr);
  if (log->events.size() >= kMaxEventsPerThread) {
    ++log->dropped;
    return;
  }
  log->events.push_back(Event{name, now_us(), true});
}

void Profiler::end(const char* name) {
  if (!enabled()) return;
  ThreadLog* log = log_for_current_thread(nullptr);
  if (log->events.size() >= kMaxEventsPerThread) {
    ++log->dropped;
    return;
  }
  log->events.push_back(Event{name, now_us(), false});
}

namespace {

struct Frame {
  const char* name;
  std::int64_t start;
  std::int64_t child_time;
};

}  // namespace

std::string Profiler::collapsed() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, std::int64_t> agg;
  for (const std::unique_ptr<ThreadLog>& log : logs_) {
    std::vector<Frame> stack;
    std::int64_t last_t = 0;
    auto close_frame = [&](std::int64_t at) {
      const Frame f = stack.back();
      stack.pop_back();
      std::int64_t dur = at - f.start;
      if (dur < 0) dur = 0;
      std::int64_t self = dur - f.child_time;
      if (self < 0) self = 0;
      std::string key = log->label;
      for (const Frame& outer : stack) {
        key += ';';
        key += outer.name;
      }
      key += ';';
      key += f.name;
      agg[key] += self;
      if (!stack.empty()) stack.back().child_time += dur;
    };
    for (const Event& ev : log->events) {
      last_t = ev.t_us;
      if (ev.begin) {
        stack.push_back(Frame{ev.name, ev.t_us, 0});
        continue;
      }
      // Tolerate mismatched ends: unwind to the matching frame if one is
      // open anywhere on the stack, else drop the event.
      bool open = false;
      for (const Frame& f : stack) {
        if (std::string_view(f.name) == ev.name) open = true;
      }
      if (!open) continue;
      while (!stack.empty()) {
        const bool match = std::string_view(stack.back().name) == ev.name;
        close_frame(ev.t_us);
        if (match) break;
      }
    }
    while (!stack.empty()) close_frame(last_t);
  }
  std::string out;
  char line[64];
  for (const auto& [key, self_us] : agg) {
    out += key;
    std::snprintf(line, sizeof(line), " %" PRId64 "\n", self_us);
    out += line;
  }
  return out;
}

std::string Profiler::chrome_trace_events() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  char buf[192];
  auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };
  for (std::size_t tid = 0; tid < logs_.size(); ++tid) {
    const ThreadLog& log = *logs_[tid];
    if (!out.empty()) out += ",\n";
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%" PRIu64
         ",\"tid\":%zu,\"args\":{\"name\":\"%s\"}}",
         kChromePid, tid, json_escape(log.label).c_str());
    std::vector<Frame> stack;
    std::int64_t last_t = 0;
    auto close_frame = [&](std::int64_t at) {
      const Frame f = stack.back();
      stack.pop_back();
      std::int64_t dur = at - f.start;
      if (dur < 0) dur = 0;
      out += ",\n";
      emit("{\"name\":\"%s\",\"cat\":\"profile\",\"ph\":\"X\",\"ts\":%" PRId64
           ",\"dur\":%" PRId64 ",\"pid\":%" PRIu64 ",\"tid\":%zu}",
           json_escape(f.name).c_str(), f.start, dur, kChromePid, tid);
      if (!stack.empty()) stack.back().child_time += dur;
    };
    for (const Event& ev : log.events) {
      last_t = ev.t_us;
      if (ev.begin) {
        stack.push_back(Frame{ev.name, ev.t_us, 0});
        continue;
      }
      bool open = false;
      for (const Frame& f : stack) {
        if (std::string_view(f.name) == ev.name) open = true;
      }
      if (!open) continue;
      while (!stack.empty()) {
        const bool match = std::string_view(stack.back().name) == ev.name;
        close_frame(ev.t_us);
        if (match) break;
      }
    }
    while (!stack.empty()) close_frame(last_t);
  }
  return out;
}

std::string Profiler::chrome_trace() const {
  std::string out = "{\"traceEvents\":[\n";
  out += chrome_trace_events();
  out += "\n]}\n";
  return out;
}

std::uint64_t Profiler::recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = 0;
  for (const std::unique_ptr<ThreadLog>& log : logs_) {
    total += log->events.size();
  }
  return total;
}

std::uint64_t Profiler::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = 0;
  for (const std::unique_ptr<ThreadLog>& log : logs_) total += log->dropped;
  return total;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  logs_.clear();
  generation_.fetch_add(1, std::memory_order_release);
}

std::string merged_chrome_trace(const Tracer& tracer,
                                const Profiler& profiler) {
  // spans_to_chrome_trace always ends with "\n]}\n"; splice the profiler's
  // slices in front of the closing bracket (format pinned by obs tests).
  std::string out = spans_to_chrome_trace(tracer);
  const std::string frag = profiler.chrome_trace_events();
  if (frag.empty()) return out;
  const std::size_t tail = out.rfind("\n]}");
  if (tail == std::string::npos) return out;
  const bool has_spans = out.find("{\"name\"") < tail;
  std::string insert;
  if (has_spans) insert += ",";
  insert += "\n";
  insert += frag;
  out.insert(tail, insert);
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return written == content.size();
}

}  // namespace p2pdrm::obs
