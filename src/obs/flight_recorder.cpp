#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace p2pdrm::obs {

namespace {

struct ThreadCache {
  const void* owner = nullptr;
  std::uint64_t generation = 0;
  void* ring = nullptr;
};
thread_local ThreadCache tl_flight_cache;

/// Copy into a fixed slot, truncating, replacing every byte that would
/// need JSON escaping (or is non-printable) with '_' — the signal-time
/// dump can then emit the bytes verbatim inside quotes.
void copy_sanitized(char* dst, std::size_t cap, const char* src) {
  std::size_t i = 0;
  if (src != nullptr) {
    for (; i + 1 < cap && src[i] != '\0'; ++i) {
      const char c = src[i];
      dst[i] = (c < 0x20 || c > 0x7e || c == '"' || c == '\\') ? '_' : c;
    }
  }
  dst[i] = '\0';
}

constexpr int kFatalSignals[] = {SIGABRT, SIGSEGV, SIGBUS, SIGFPE, SIGILL};
constexpr std::size_t kNumFatalSignals =
    sizeof(kFatalSignals) / sizeof(kFatalSignals[0]);
struct sigaction g_old_actions[kNumFatalSignals];

const char* signal_name(int sig) {
  switch (sig) {
    case SIGABRT: return "SIGABRT";
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    default: return "SIGNAL";
  }
}

void crash_handler(int sig) {
  FlightRecorder::global().dump(signal_name(sig));
  // Restore the default disposition and re-raise so the process dies with
  // the original signal (exit code, core dump) as if we were never here.
  signal(sig, SIG_DFL);
  raise(sig);
}

// --- async-signal-safe formatting into an fd ---------------------------

/// Small write buffer flushed with write(2); every formatter below is
/// loop-and-arithmetic only (no stdio, no malloc, no locale).
struct FdWriter {
  int fd;
  char buf[512];
  std::size_t len = 0;
  bool ok = true;

  void flush() {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) {
        ok = false;
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }
  void put(char c) {
    if (len == sizeof(buf)) flush();
    buf[len++] = c;
  }
  void str(const char* s) {
    for (; *s != '\0'; ++s) put(*s);
  }
  void u64(std::uint64_t v) {
    char tmp[20];
    std::size_t n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n != 0) put(tmp[--n]);
  }
  void i64(std::int64_t v) {
    if (v < 0) {
      put('-');
      u64(static_cast<std::uint64_t>(-(v + 1)) + 1);
    } else {
      u64(static_cast<std::uint64_t>(v));
    }
  }
};

}  // namespace

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder instance;
  return instance;
}

FlightRecorder::FlightRecorder() : rings_(new Ring[kMaxThreads]) {}

FlightRecorder::~FlightRecorder() { disarm(); }

void FlightRecorder::arm(const std::string& path) {
  std::size_t n = path.size();
  if (n >= sizeof(path_)) n = sizeof(path_) - 1;
  std::memcpy(path_, path.c_str(), n);
  path_[n] = '\0';
  if (this == &global() && !handlers_installed_) {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = crash_handler;
    sigemptyset(&action.sa_mask);
    for (std::size_t i = 0; i < kNumFatalSignals; ++i) {
      sigaction(kFatalSignals[i], &action, &g_old_actions[i]);
    }
    handlers_installed_ = true;
  }
  armed_.store(true, std::memory_order_release);
}

bool FlightRecorder::arm_from_env(const char* env) {
  const char* value = std::getenv(env);
  if (value == nullptr || value[0] == '\0') return false;
  arm(value);
  return true;
}

void FlightRecorder::disarm() {
  armed_.store(false, std::memory_order_release);
  if (handlers_installed_) {
    for (std::size_t i = 0; i < kNumFatalSignals; ++i) {
      sigaction(kFatalSignals[i], &g_old_actions[i], nullptr);
    }
    handlers_installed_ = false;
  }
}

FlightRecorder::Ring* FlightRecorder::ring_for_current_thread(
    const char* label) {
  ThreadCache& cache = tl_flight_cache;
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (cache.owner == this && cache.generation == gen) {
    return static_cast<Ring*>(cache.ring);
  }
  const std::size_t slot = threads_.fetch_add(1, std::memory_order_acq_rel);
  if (slot >= kMaxThreads) {
    threads_.fetch_sub(1, std::memory_order_acq_rel);
    return nullptr;  // recorder full: silently stop covering extra threads
  }
  Ring* ring = &rings_[slot];
  copy_sanitized(ring->label, sizeof(ring->label),
                 label != nullptr && label[0] != '\0' ? label : "anon");
  cache.owner = this;
  cache.generation = gen;
  cache.ring = ring;
  return ring;
}

void FlightRecorder::attach_thread(const char* label) {
  if (!armed()) return;
  Ring* ring = ring_for_current_thread(label);
  if (ring != nullptr) copy_sanitized(ring->label, sizeof(ring->label), label);
}

void FlightRecorder::record(const char* kind, std::uint64_t a, std::uint64_t b,
                            const char* detail) {
  if (!armed()) return;
  Ring* ring = ring_for_current_thread(nullptr);
  if (ring == nullptr) return;
  const std::uint64_t n = ring->count.load(std::memory_order_relaxed);
  Event& e = ring->events[n % kRingCapacity];
  e.t_us = now_us();
  e.seq = n;
  e.a = a;
  e.b = b;
  copy_sanitized(e.kind, sizeof(e.kind), kind);
  copy_sanitized(e.detail, sizeof(e.detail), detail);
  ring->count.store(n + 1, std::memory_order_release);
}

bool FlightRecorder::dump(const char* reason) {
  if (path_[0] == '\0') return false;
  const int fd = ::open(path_, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool ok = dump_to_fd(fd, reason);
  ::close(fd);
  return ok;
}

bool FlightRecorder::dump_to_fd(int fd, const char* reason) {
  FdWriter w{fd};
  w.str("{\"schema\":\"p2pdrm.flight.v1\",\"reason\":\"");
  // The reason is always one of our own literals, but sanitize anyway.
  char clean_reason[32];
  copy_sanitized(clean_reason, sizeof(clean_reason), reason);
  w.str(clean_reason);
  w.str("\",\"t_us\":");
  w.i64(now_us());
  w.str(",\"threads\":[");
  const std::size_t threads =
      std::min(threads_.load(std::memory_order_acquire), kMaxThreads);
  for (std::size_t i = 0; i < threads; ++i) {
    const Ring& ring = rings_[i];
    if (i != 0) w.put(',');
    w.str("\n{\"label\":\"");
    w.str(ring.label);
    const std::uint64_t count = ring.count.load(std::memory_order_acquire);
    const std::uint64_t dropped =
        count > kRingCapacity ? count - kRingCapacity : 0;
    w.str("\",\"recorded\":");
    w.u64(count);
    w.str(",\"dropped\":");
    w.u64(dropped);
    w.str(",\"events\":[");
    for (std::uint64_t seq = dropped; seq < count; ++seq) {
      const Event& e = ring.events[seq % kRingCapacity];
      if (seq != dropped) w.put(',');
      w.str("\n{\"t_us\":");
      w.i64(e.t_us);
      w.str(",\"seq\":");
      w.u64(e.seq);
      w.str(",\"kind\":\"");
      w.str(e.kind);
      w.str("\",\"a\":");
      w.u64(e.a);
      w.str(",\"b\":");
      w.u64(e.b);
      w.str(",\"detail\":\"");
      w.str(e.detail);
      w.str("\"}");
    }
    w.str("]}");
  }
  w.str("\n]}\n");
  w.flush();
  return w.ok;
}

std::vector<FlightRecorder::ThreadView> FlightRecorder::snapshot() const {
  std::vector<ThreadView> out;
  const std::size_t threads =
      std::min(threads_.load(std::memory_order_acquire), kMaxThreads);
  for (std::size_t i = 0; i < threads; ++i) {
    const Ring& ring = rings_[i];
    ThreadView view;
    view.label = ring.label;
    view.recorded = ring.count.load(std::memory_order_acquire);
    view.dropped =
        view.recorded > kRingCapacity ? view.recorded - kRingCapacity : 0;
    for (std::uint64_t seq = view.dropped; seq < view.recorded; ++seq) {
      const Event& e = ring.events[seq % kRingCapacity];
      EventView ev;
      ev.t_us = e.t_us;
      ev.seq = e.seq;
      ev.a = e.a;
      ev.b = e.b;
      ev.kind = e.kind;
      ev.detail = e.detail;
      view.events.push_back(std::move(ev));
    }
    out.push_back(std::move(view));
  }
  return out;
}

void FlightRecorder::reset() {
  disarm();
  const std::size_t threads =
      std::min(threads_.load(std::memory_order_acquire), kMaxThreads);
  for (std::size_t i = 0; i < threads; ++i) {
    rings_[i].count.store(0, std::memory_order_relaxed);
    rings_[i].label[0] = '\0';
  }
  threads_.store(0, std::memory_order_release);
  generation_.fetch_add(1, std::memory_order_release);
  path_[0] = '\0';
}

}  // namespace p2pdrm::obs
