// Time-series engine: periodic Registry scrapes into ring-buffered series.
//
// A TimeSeries holds named series of (sim time, value) points with a fixed
// per-series ring capacity — long runs stay bounded in memory, and the
// points that fall off the front are counted, never silently lost. Two
// sources feed it:
//
//  - record(name, at, value): an explicit signal the registry does not
//    carry (the macro-sim's concurrent-viewer load, a bench's phase marker).
//  - scrape(registry, at): one snapshot of every registry metric. Counters
//    and gauges become a series under their own name; histograms expand
//    into ".count" / ".p50" / ".p95" / ".p99" sub-series.
//
// A scrape filter (exact names, or "prefix.*" wildcards) keeps week-scale
// macro-sim scrapes from dragging hundreds of per-hour histograms along.
// Iteration is map order and values are fixed-format, so the CSV exposition
// is byte-identical across same-seed runs (asserted by test).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "util/time.h"

namespace p2pdrm::obs {

struct TimePoint {
  util::SimTime at = 0;
  double value = 0.0;
};

class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity_per_series = 4096);

  /// Restrict scrape() to metrics matching one of `filters`: an exact name,
  /// or a prefix wildcard ("macro.round.*"). Empty (the default) admits
  /// everything. record() is never filtered — an explicit signal was asked
  /// for by name.
  void set_scrape_filters(std::vector<std::string> filters);

  void record(const std::string& series, util::SimTime at, double value);
  /// Snapshot every admitted registry metric at time `at`.
  void scrape(const Registry& registry, util::SimTime at);

  std::size_t scrapes() const { return scrapes_; }
  /// Points evicted from ring buffers across all series.
  std::uint64_t points_dropped() const { return dropped_; }

  std::vector<std::string> names() const;
  /// nullptr when the series does not exist.
  const std::deque<TimePoint>* series(const std::string& name) const;

  /// "series,t_us,value" rows, series in name order, points in time order.
  std::string to_csv() const;

 private:
  bool admitted(const std::string& name) const;
  void push(const std::string& name, util::SimTime at, double value);

  std::size_t capacity_;
  std::vector<std::string> filters_;
  std::map<std::string, std::deque<TimePoint>> series_;
  std::size_t scrapes_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace p2pdrm::obs
