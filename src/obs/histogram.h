// Log-bucketed latency histogram: p50/p95/p99 without storing samples.
//
// Values (microseconds of SimTime, or any positive integer quantity) are
// binned into log-linear buckets — 2^kPrecisionBits linear sub-buckets per
// power of two, the HdrHistogram layout — so the relative width of every
// bucket above 2^kPrecisionBits is at most 2^-kPrecisionBits. Quantiles are
// estimated at the bucket midpoint, which bounds the relative estimation
// error by 2^-(kPrecisionBits+1) (6.25% at the default precision of 3 bits)
// for values >= 2^kPrecisionBits. Everything is integer arithmetic:
// identical record() sequences produce identical buckets, counts, and
// quantiles on every platform.
//
// Thread safety: every operation takes the histogram's own mutex, so
// concurrent recorders on the live transport (many client loops feeding one
// "client.round.LOGIN1" histogram) are safe. The only exception is
// buckets(), which returns a reference into the bucket store — call it only
// when no recorder is running (exports and tests do).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace p2pdrm::obs {

class LatencyHistogram {
 public:
  /// Linear sub-buckets per octave = 2^kPrecisionBits.
  static constexpr std::uint32_t kPrecisionBits = 3;
  static constexpr std::uint32_t kSubBuckets = 1u << kPrecisionBits;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram& other);
  LatencyHistogram& operator=(const LatencyHistogram& other);

  /// Bucket index for a value (values < 1 clamp into bucket 0; the first
  /// kSubBuckets buckets hold one integer value each, exactly).
  static std::size_t bucket_index(std::int64_t value);
  /// Smallest value mapped to the bucket (0 for bucket 0).
  static std::int64_t bucket_lower(std::size_t index);
  /// One past the largest value mapped to the bucket.
  static std::int64_t bucket_upper(std::size_t index);

  void record(std::int64_t value);

  std::uint64_t count() const { std::lock_guard<std::mutex> lk(mu_); return count_; }
  std::int64_t min() const { std::lock_guard<std::mutex> lk(mu_); return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { std::lock_guard<std::mutex> lk(mu_); return count_ == 0 ? 0 : max_; }
  double sum() const { std::lock_guard<std::mutex> lk(mu_); return sum_; }
  double mean() const {
    std::lock_guard<std::mutex> lk(mu_);
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  bool empty() const { return count() == 0; }

  /// Quantile estimate (q in [0,1]; nearest-rank bucket, midpoint value),
  /// clamped into [min, max] so tail quantiles never overshoot the data.
  /// Returns 0 for an empty histogram.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// Fold another histogram's buckets into this one (self-merge doubles).
  void merge(const LatencyHistogram& other);
  void reset();

  /// Raw buckets (index -> count); trailing buckets may be absent. Not
  /// synchronized — for quiescent export/test use only.
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  struct Snapshot {
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
    std::int64_t min = 0;
    std::int64_t max = 0;
  };
  Snapshot snapshot() const;

  mutable std::mutex mu_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace p2pdrm::obs
