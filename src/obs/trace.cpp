#include "obs/trace.h"

namespace p2pdrm::obs {

Tracer::Tracer(Tracer&& other) noexcept {
  std::lock_guard<std::mutex> lk(other.mu_);
  spans_ = std::move(other.spans_);
  inflight_ = std::move(other.inflight_);
  capacity_ = other.capacity_;
  dropped_ = other.dropped_;
}

Tracer& Tracer::operator=(Tracer&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lk(mu_, other.mu_);
  spans_ = std::move(other.spans_);
  inflight_ = std::move(other.inflight_);
  capacity_ = other.capacity_;
  dropped_ = other.dropped_;
  return *this;
}

SpanId Tracer::begin_span(std::string category, std::string name,
                          std::uint64_t actor, util::SimTime now, SpanId parent) {
  std::lock_guard<std::mutex> lk(mu_);
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return 0;
  }
  Span span;
  span.id = static_cast<SpanId>(spans_.size()) + 1;
  span.parent = parent;
  span.category = std::move(category);
  span.name = std::move(name);
  span.actor = actor;
  span.start = now;
  span.end = now;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

Span* Tracer::mutable_span(SpanId span) {
  if (span == 0 || span > spans_.size()) return nullptr;
  return &spans_[span - 1];
}

void Tracer::tag(SpanId span, std::string key, std::string value) {
  std::lock_guard<std::mutex> lk(mu_);
  if (Span* s = mutable_span(span)) {
    s->tags.emplace_back(std::move(key), std::move(value));
  }
}

void Tracer::event(SpanId span, util::SimTime now, std::string name,
                   std::string detail) {
  std::lock_guard<std::mutex> lk(mu_);
  if (Span* s = mutable_span(span)) {
    s->events.push_back(SpanEvent{now, std::move(name), std::move(detail)});
  }
}

void Tracer::end_span(SpanId span, util::SimTime now, bool ok) {
  std::lock_guard<std::mutex> lk(mu_);
  if (Span* s = mutable_span(span)) {
    s->end = now;
    s->open = false;
    s->ok = ok;
  }
}

void Tracer::bind_request(std::uint64_t actor, std::uint64_t request_id,
                          SpanId span) {
  std::lock_guard<std::mutex> lk(mu_);
  inflight_[{actor, request_id}] = span;
}

SpanId Tracer::bound_request(std::uint64_t actor, std::uint64_t request_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = inflight_.find({actor, request_id});
  return it == inflight_.end() ? 0 : it->second;
}

void Tracer::unbind_request(std::uint64_t actor, std::uint64_t request_id) {
  std::lock_guard<std::mutex> lk(mu_);
  inflight_.erase({actor, request_id});
}

const Span* Tracer::find(SpanId span) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (span == 0 || span > spans_.size()) return nullptr;
  return &spans_[span - 1];
}

std::size_t Tracer::open_spans() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t open = 0;
  for (const Span& s : spans_) {
    if (s.open) ++open;
  }
  return open;
}

void Tracer::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lk(mu_);
  capacity_ = capacity;
}

std::size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lk(mu_);
  return capacity_;
}

std::uint64_t Tracer::spans_dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

void Tracer::absorb(Tracer&& other) {
  std::vector<Span> incoming;
  std::uint64_t incoming_dropped = 0;
  {
    std::lock_guard<std::mutex> lk(other.mu_);
    incoming = std::move(other.spans_);
    incoming_dropped = other.dropped_;
    other.spans_.clear();
    other.inflight_.clear();
    other.dropped_ = 0;
  }
  std::lock_guard<std::mutex> lk(mu_);
  dropped_ += incoming_dropped;
  const SpanId base = static_cast<SpanId>(spans_.size());
  for (Span& s : incoming) {
    if (spans_.size() >= capacity_) {
      ++dropped_;
      continue;
    }
    s.id += base;
    if (s.parent != 0) s.parent += base;
    spans_.push_back(std::move(s));
  }
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  spans_.clear();
  inflight_.clear();
  dropped_ = 0;
}

}  // namespace p2pdrm::obs
