#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace p2pdrm::obs {

std::size_t LatencyHistogram::bucket_index(std::int64_t value) {
  if (value < 1) return 0;
  const std::uint64_t v = static_cast<std::uint64_t>(value);
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  // Octave = position of the MSB; sub-bucket = the kPrecisionBits bits
  // below it. Octave kPrecisionBits starts at index kSubBuckets, and each
  // octave contributes kSubBuckets buckets.
  const std::uint32_t msb = 63u - static_cast<std::uint32_t>(std::countl_zero(v));
  const std::uint64_t sub = (v >> (msb - kPrecisionBits)) & (kSubBuckets - 1);
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(msb - kPrecisionBits + 1) << kPrecisionBits) + sub);
}

std::int64_t LatencyHistogram::bucket_lower(std::size_t index) {
  if (index < kSubBuckets) return static_cast<std::int64_t>(index);
  const std::uint64_t block = static_cast<std::uint64_t>(index) >> kPrecisionBits;
  const std::uint64_t sub = static_cast<std::uint64_t>(index) & (kSubBuckets - 1);
  return static_cast<std::int64_t>((kSubBuckets + sub) << (block - 1));
}

std::int64_t LatencyHistogram::bucket_upper(std::size_t index) {
  return bucket_lower(index + 1);
}

LatencyHistogram::LatencyHistogram(const LatencyHistogram& other) {
  const Snapshot s = other.snapshot();
  buckets_ = s.buckets;
  count_ = s.count;
  sum_ = s.sum;
  min_ = s.min;
  max_ = s.max;
}

LatencyHistogram& LatencyHistogram::operator=(const LatencyHistogram& other) {
  if (this == &other) return *this;
  const Snapshot s = other.snapshot();
  std::lock_guard<std::mutex> lk(mu_);
  buckets_ = s.buckets;
  count_ = s.count;
  sum_ = s.sum;
  min_ = s.min;
  max_ = s.max;
  return *this;
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return Snapshot{buckets_, count_, sum_, min_, max_};
}

void LatencyHistogram::record(std::int64_t value) {
  const std::int64_t clamped = std::max<std::int64_t>(value, 0);
  const std::size_t index = bucket_index(clamped);
  std::lock_guard<std::mutex> lk(mu_);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  ++buckets_[index];
  if (count_ == 0) {
    min_ = max_ = clamped;
  } else {
    min_ = std::min(min_, clamped);
    max_ = std::max(max_, clamped);
  }
  ++count_;
  sum_ += static_cast<double>(clamped);
}

double LatencyHistogram::quantile(double q) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (count_ == 0) return 0.0;
  const double clamped_q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest bucket whose cumulative count reaches rank.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(clamped_q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      const double mid = (static_cast<double>(bucket_lower(i)) +
                          static_cast<double>(bucket_upper(i))) /
                         2.0;
      return std::clamp(mid, static_cast<double>(min_), static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  // Snapshot first (other's lock only), then fold under ours: no lock-order
  // cycle between two histograms, and self-merge stays correct.
  const Snapshot s = other.snapshot();
  if (s.count == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (s.buckets.size() > buckets_.size()) buckets_.resize(s.buckets.size(), 0);
  for (std::size_t i = 0; i < s.buckets.size(); ++i) buckets_[i] += s.buckets[i];
  min_ = count_ == 0 ? s.min : std::min(min_, s.min);
  max_ = count_ == 0 ? s.max : std::max(max_, s.max);
  count_ += s.count;
  sum_ += s.sum;
}

void LatencyHistogram::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  buckets_.clear();
  count_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

}  // namespace p2pdrm::obs
