// Crash flight recorder: always-on per-thread ring buffers of recent
// structured events, dumped as JSON when the process dies (or on demand).
//
// Every participating thread owns one fixed-size ring (claimed on first
// record(), never reclaimed) and is that ring's only writer, so the hot
// path is: one relaxed atomic load (armed?), copy ~90 POD bytes into the
// next slot, bump the ring's sequence. No locks, no allocation, no
// syscalls. When disarmed — the default — record() is the single load.
//
// arm(path) on the global instance installs handlers for the fatal
// signals (SIGABRT/SEGV/BUS/FPE/ILL); the handler dumps all rings to
// `path` using only async-signal-safe primitives (open/write/strcpy-level
// formatting into stack buffers — event strings are sanitized to
// printable-JSON-safe bytes at record() time, so the dump path never needs
// to escape) and then re-raises the signal with its default disposition so
// exit codes and core dumps behave as before. A dump racing live writers
// can contain one torn event per ring; a post-mortem reader tolerates
// that, and tests only dump at quiescence.
//
// Dump schema ("p2pdrm.flight.v1"):
//   {"schema":"p2pdrm.flight.v1","reason":"SIGABRT","t_us":N,"threads":[
//     {"label":"loop-0","recorded":N,"dropped":N,"events":[
//       {"t_us":N,"seq":N,"kind":"net.send","a":N,"b":N,"detail":"..."}]}]}
// `recorded` counts every event the thread ever logged; `dropped` is how
// many the ring has already overwritten (recorded - capacity, floored at
// zero); `seq` is the per-thread sequence number, so the first retained
// event has seq == dropped.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace p2pdrm::obs {

class FlightRecorder {
 public:
  static constexpr std::size_t kRingCapacity = 256;
  static constexpr std::size_t kMaxThreads = 64;
  static constexpr std::size_t kKindBytes = 24;    // incl. NUL
  static constexpr std::size_t kDetailBytes = 40;  // incl. NUL
  static constexpr std::size_t kLabelBytes = 24;   // incl. NUL

  static FlightRecorder& global();

  FlightRecorder();
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Start recording and remember the dump path. On the global instance
  /// this also installs the fatal-signal handlers (instances built by
  /// tests record and dump manually, signal-free).
  void arm(const std::string& path);
  /// arm() from an env var ("P2PDRM_FLIGHT_OUT"); false when unset.
  bool arm_from_env(const char* env = "P2PDRM_FLIGHT_OUT");
  /// Stop recording (rings retained for inspection); restores the previous
  /// signal dispositions if this instance installed handlers.
  void disarm();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  const char* dump_path() const { return path_; }

  /// Label this thread's ring; claims one if needed. No-op when disarmed.
  void attach_thread(const char* label);

  /// Log one event into the calling thread's ring. `kind` and `detail`
  /// are truncated/sanitized into fixed slots at record time; `a`/`b` are
  /// free-form operands (node ids, sequence numbers). Near-free when
  /// disarmed.
  void record(const char* kind, std::uint64_t a = 0, std::uint64_t b = 0,
              const char* detail = nullptr);

  /// Write the JSON dump to dump_path(). Async-signal-safe. Returns false
  /// when the recorder was never armed or the file cannot be written.
  bool dump(const char* reason);
  /// Same, to an already-open fd (what dump() and the tests use).
  bool dump_to_fd(int fd, const char* reason);

  // --- quiescent introspection (tests) ---

  struct EventView {
    std::int64_t t_us = 0;
    std::uint64_t seq = 0;
    std::uint64_t a = 0, b = 0;
    std::string kind;
    std::string detail;
  };
  struct ThreadView {
    std::string label;
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
    std::vector<EventView> events;  // oldest retained first
  };
  std::vector<ThreadView> snapshot() const;

  /// Disarm, forget every ring, and invalidate thread caches so the next
  /// record() re-claims. Quiescent only.
  void reset();

 private:
  struct Event {
    std::int64_t t_us = 0;
    std::uint64_t seq = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    char kind[kKindBytes] = {};
    char detail[kDetailBytes] = {};
  };
  struct Ring {
    char label[kLabelBytes] = {};
    /// Events ever recorded by the owner thread; slot = seq % capacity.
    /// Written with release so a dump sees completed slots.
    std::atomic<std::uint64_t> count{0};
    Event events[kRingCapacity];
  };

  Ring* ring_for_current_thread(const char* label);
  std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> generation_{1};
  std::atomic<std::size_t> threads_{0};
  bool handlers_installed_ = false;
  char path_[256] = {};
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  std::unique_ptr<Ring[]> rings_;  // kMaxThreads, preallocated
};

}  // namespace p2pdrm::obs
