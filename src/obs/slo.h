// Online SLO evaluation for the five protocol rounds.
//
// The paper's headline evaluation claim (Figs. 5/6) is that round latency
// stays flat and essentially uncorrelated with concurrent load. SloMonitor
// turns that from an after-the-run plot into a continuously evaluated
// signal: per-round p95/p99 latency objectives with error-budget burn
// rates over a sliding window, plus an online windowed Pearson correlation
// between the concurrent-user load and each round's mean latency.
//
// Feed it two streams on the simulation clock:
//  - observe(round, now, latency): every completed round, as it completes.
//  - tick(now, load): a periodic heartbeat (the scrape interval) carrying
//    the current load. Each tick closes one aggregation bucket per round;
//    the sliding window, burn rates, and windowed correlation are computed
//    over these buckets.
//
// Burn rate follows the SRE convention: with a p99 objective, 1% of
// requests are allowed over the target, so a window where 3% ran over
// burns the error budget at 3x. Burn 1.0 = exactly on budget.
//
// Everything is deterministic: same observation sequence, same report
// bytes (asserted by test).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.h"
#include "util/time.h"

namespace p2pdrm::obs {

struct SloObjective {
  std::string round;                  // e.g. "LOGIN1"
  std::int64_t p95_target_us = 0;     // 0 = no p95 objective
  std::int64_t p99_target_us = 0;     // 0 = no p99 objective
  util::SimTime window = util::kHour; // sliding window for burn/correlation
};

class SloMonitor {
 public:
  /// Fraction of requests allowed over the p95 / p99 target (the error
  /// budget the burn rate is measured against).
  static constexpr double kP95Allowance = 0.05;
  static constexpr double kP99Allowance = 0.01;

  explicit SloMonitor(std::vector<SloObjective> objectives);

  /// One completed round. Rounds without an objective are ignored.
  void observe(std::string_view round, util::SimTime now,
               std::int64_t latency_us);
  /// Close the current aggregation bucket for every round; `load` is the
  /// concurrent-user count (or any load proxy) at `now`.
  void tick(util::SimTime now, double load);

  struct RoundStatus {
    std::uint64_t count = 0;     // whole-run observations
    double p95_us = 0;           // whole-run quantiles
    double p99_us = 0;
    bool p95_ok = true;          // whole-run quantile within target
    bool p99_ok = true;
    double burn95 = 0;           // burn rate over the current window
    double burn99 = 0;
    double worst_burn95 = 0;     // worst window seen this run
    double worst_burn99 = 0;
    bool window_r_valid = false; // windowed load<->latency Pearson r
    double window_r = 0;
    double max_abs_window_r = 0; // max |r| over all windows this run
    bool run_r_valid = false;    // whole-run Pearson over tick buckets
    double run_r = 0;
  };
  /// Zero-initialized status for unknown rounds.
  RoundStatus status(std::string_view round) const;

  /// True when every whole-run p95/p99 quantile meets its target (the CI
  /// gate for no-fault baselines).
  bool within_budget() const;

  std::size_t ticks() const { return ticks_; }
  const std::vector<SloObjective>& objectives() const { return objectives_; }

  /// Deterministic fixed-width report table, one row per objective.
  std::string report() const;

 private:
  struct TickBucket {
    util::SimTime at = 0;
    std::uint64_t count = 0;
    std::uint64_t over95 = 0;
    std::uint64_t over99 = 0;
    double mean_latency = 0;
    double load = 0;
  };
  struct RoundState {
    SloObjective objective;
    LatencyHistogram hist;  // whole run
    // Open bucket, closed by the next tick().
    std::uint64_t cur_count = 0;
    std::uint64_t cur_over95 = 0;
    std::uint64_t cur_over99 = 0;
    double cur_sum = 0;
    std::deque<TickBucket> window;
    double burn95 = 0, burn99 = 0;
    double worst_burn95 = 0, worst_burn99 = 0;
    bool window_r_valid = false;
    double window_r = 0;
    double max_abs_window_r = 0;
    // Whole-run correlation accumulators over non-empty tick buckets.
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    std::uint64_t n = 0;
  };

  std::vector<SloObjective> objectives_;
  std::map<std::string, RoundState, std::less<>> rounds_;
  std::size_t ticks_ = 0;
};

}  // namespace p2pdrm::obs
