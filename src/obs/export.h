// Exporters for the observability subsystem. All output is byte-stable:
// fixed printf formatting, span/metric iteration in deterministic order —
// two runs of the same seed export identical bytes (asserted by test).
//
//  - spans_to_jsonl:        one JSON object per span, id order. The
//                           grep/jq-friendly archival format.
//  - spans_to_chrome_trace: Chrome trace_event JSON ("traceEvents" array),
//                           loadable in about:tracing or Perfetto; spans
//                           become complete ("X") slices keyed pid=actor,
//                           span events become instant ("i") markers.
//  - histograms_to_csv:     per-histogram quantile summary table.
//  - histogram_buckets_to_csv: full bucket dump of one histogram (plotting
//                           CDFs outside the repo).
//  - registry_to_prometheus: Prometheus text exposition of a whole
//                           registry — counters/gauges under sanitized
//                           names, families as labelled samples,
//                           histograms as summaries with quantile labels.
#pragma once

#include <string>

#include "obs/registry.h"
#include "obs/trace.h"

namespace p2pdrm::obs {

std::string spans_to_jsonl(const Tracer& tracer);
std::string spans_to_chrome_trace(const Tracer& tracer);

std::string histograms_to_csv(const Registry& registry);
std::string histogram_buckets_to_csv(const std::string& name,
                                     const LatencyHistogram& histogram);

/// Prometheus text exposition format (version 0.0.4). Dots and dashes in
/// metric names become underscores; a registry family "fam{label}" renders
/// as `fam{label="..."}` with the label value escaped; histograms render
/// as summaries (`{quantile="0.5"}`, `_sum`, `_count`). Every family gets
/// one `# HELP` line (carrying the original dotted name, so consumers can
/// map sanitized names back) and one `# TYPE` line before its first
/// sample. Iteration follows the registry's name order, so output is
/// byte-stable.
std::string registry_to_prometheus(const Registry& registry);

/// JSON string escaping (exposed for the exporters' tests).
std::string json_escape(const std::string& s);

/// Prometheus label-value escaping: backslash, double quote, newline
/// (exposed for the exporters' tests).
std::string prometheus_escape_label(const std::string& s);

}  // namespace p2pdrm::obs
