// Exporters for the observability subsystem. All output is byte-stable:
// fixed printf formatting, span/metric iteration in deterministic order —
// two runs of the same seed export identical bytes (asserted by test).
//
//  - spans_to_jsonl:        one JSON object per span, id order. The
//                           grep/jq-friendly archival format.
//  - spans_to_chrome_trace: Chrome trace_event JSON ("traceEvents" array),
//                           loadable in about:tracing or Perfetto; spans
//                           become complete ("X") slices keyed pid=actor,
//                           span events become instant ("i") markers.
//  - histograms_to_csv:     per-histogram quantile summary table.
//  - histogram_buckets_to_csv: full bucket dump of one histogram (plotting
//                           CDFs outside the repo).
#pragma once

#include <string>

#include "obs/registry.h"
#include "obs/trace.h"

namespace p2pdrm::obs {

std::string spans_to_jsonl(const Tracer& tracer);
std::string spans_to_chrome_trace(const Tracer& tracer);

std::string histograms_to_csv(const Registry& registry);
std::string histogram_buckets_to_csv(const std::string& name,
                                     const LatencyHistogram& histogram);

/// JSON string escaping (exposed for the exporters' tests).
std::string json_escape(const std::string& s);

}  // namespace p2pdrm::obs
