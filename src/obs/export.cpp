#include "obs/export.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace p2pdrm::obs {
namespace {

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  out += json_escape(s);
  out += '"';
}

void append_tags_json(std::string& out, const Span& span) {
  out += "[";
  bool first = true;
  for (const auto& [key, value] : span.tags) {
    if (!first) out += ",";
    first = false;
    out += "[";
    append_json_string(out, key);
    out += ",";
    append_json_string(out, value);
    out += "]";
  }
  out += "]";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string spans_to_jsonl(const Tracer& tracer) {
  std::string out;
  for (const Span& span : tracer.spans()) {
    append_fmt(out, "{\"id\":%" PRIu64 ",\"parent\":%" PRIu64 ",\"cat\":",
               span.id, span.parent);
    append_json_string(out, span.category);
    out += ",\"name\":";
    append_json_string(out, span.name);
    append_fmt(out,
               ",\"actor\":%" PRIu64 ",\"start\":%" PRId64 ",\"end\":%" PRId64
               ",\"open\":%s,\"ok\":%s,\"tags\":",
               span.actor, span.start, span.end, span.open ? "true" : "false",
               span.ok ? "true" : "false");
    append_tags_json(out, span);
    out += ",\"events\":[";
    bool first = true;
    for (const SpanEvent& ev : span.events) {
      if (!first) out += ",";
      first = false;
      append_fmt(out, "{\"at\":%" PRId64 ",\"name\":", ev.at);
      append_json_string(out, ev.name);
      out += ",\"detail\":";
      append_json_string(out, ev.detail);
      out += "}";
    }
    out += "]}\n";
  }
  return out;
}

std::string spans_to_chrome_trace(const Tracer& tracer) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Span& span : tracer.spans()) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":";
    append_json_string(out, span.name);
    out += ",\"cat\":";
    append_json_string(out, span.category);
    append_fmt(out,
               ",\"ph\":\"X\",\"ts\":%" PRId64 ",\"dur\":%" PRId64
               ",\"pid\":%" PRIu64 ",\"tid\":%" PRIu64 ",\"args\":{",
               span.start, span.end - span.start, span.actor, span.actor);
    append_fmt(out, "\"span\":%" PRIu64 ",\"parent\":%" PRIu64 ",\"ok\":%s",
               span.id, span.parent, span.ok ? "true" : "false");
    for (const auto& [key, value] : span.tags) {
      out += ",";
      append_json_string(out, key);
      out += ":";
      append_json_string(out, value);
    }
    out += "}}";
    for (const SpanEvent& ev : span.events) {
      out += ",\n{\"name\":";
      append_json_string(out, ev.name);
      out += ",\"cat\":";
      append_json_string(out, span.category);
      append_fmt(out,
                 ",\"ph\":\"i\",\"ts\":%" PRId64 ",\"pid\":%" PRIu64
                 ",\"tid\":%" PRIu64 ",\"s\":\"t\",\"args\":{\"detail\":",
                 ev.at, span.actor, span.actor);
      append_json_string(out, ev.detail);
      out += "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

std::string histograms_to_csv(const Registry& registry) {
  std::string out = "name,count,min_us,max_us,mean_us,p50_us,p95_us,p99_us\n";
  for (const auto& [name, h] : registry.histograms()) {
    append_fmt(out, "%s,%" PRIu64 ",%" PRId64 ",%" PRId64 ",%.1f,%.1f,%.1f,%.1f\n",
               name.c_str(), h.count(), h.empty() ? 0 : h.min(),
               h.empty() ? 0 : h.max(), h.mean(), h.p50(), h.p95(), h.p99());
  }
  return out;
}

std::string histogram_buckets_to_csv(const std::string& name,
                                     const LatencyHistogram& histogram) {
  std::string out = "name,lower_us,upper_us,count\n";
  const auto& buckets = histogram.buckets();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    append_fmt(out, "%s,%" PRId64 ",%" PRId64 ",%" PRIu64 "\n", name.c_str(),
               LatencyHistogram::bucket_lower(i),
               LatencyHistogram::bucket_upper(i), buckets[i]);
  }
  return out;
}

}  // namespace p2pdrm::obs
