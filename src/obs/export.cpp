#include "obs/export.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace p2pdrm::obs {
namespace {

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  out += json_escape(s);
  out += '"';
}

void append_tags_json(std::string& out, const Span& span) {
  out += "[";
  bool first = true;
  for (const auto& [key, value] : span.tags) {
    if (!first) out += ",";
    first = false;
    out += "[";
    append_json_string(out, key);
    out += ",";
    append_json_string(out, value);
    out += "]";
  }
  out += "]";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string spans_to_jsonl(const Tracer& tracer) {
  std::string out;
  for (const Span& span : tracer.spans()) {
    append_fmt(out, "{\"id\":%" PRIu64 ",\"parent\":%" PRIu64 ",\"cat\":",
               span.id, span.parent);
    append_json_string(out, span.category);
    out += ",\"name\":";
    append_json_string(out, span.name);
    append_fmt(out,
               ",\"actor\":%" PRIu64 ",\"start\":%" PRId64 ",\"end\":%" PRId64
               ",\"open\":%s,\"ok\":%s,\"tags\":",
               span.actor, span.start, span.end, span.open ? "true" : "false",
               span.ok ? "true" : "false");
    append_tags_json(out, span);
    out += ",\"events\":[";
    bool first = true;
    for (const SpanEvent& ev : span.events) {
      if (!first) out += ",";
      first = false;
      append_fmt(out, "{\"at\":%" PRId64 ",\"name\":", ev.at);
      append_json_string(out, ev.name);
      out += ",\"detail\":";
      append_json_string(out, ev.detail);
      out += "}";
    }
    out += "]}\n";
  }
  return out;
}

std::string spans_to_chrome_trace(const Tracer& tracer) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Span& span : tracer.spans()) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":";
    append_json_string(out, span.name);
    out += ",\"cat\":";
    append_json_string(out, span.category);
    append_fmt(out,
               ",\"ph\":\"X\",\"ts\":%" PRId64 ",\"dur\":%" PRId64
               ",\"pid\":%" PRIu64 ",\"tid\":%" PRIu64 ",\"args\":{",
               span.start, span.end - span.start, span.actor, span.actor);
    append_fmt(out, "\"span\":%" PRIu64 ",\"parent\":%" PRIu64 ",\"ok\":%s",
               span.id, span.parent, span.ok ? "true" : "false");
    for (const auto& [key, value] : span.tags) {
      out += ",";
      append_json_string(out, key);
      out += ":";
      append_json_string(out, value);
    }
    out += "}}";
    for (const SpanEvent& ev : span.events) {
      out += ",\n{\"name\":";
      append_json_string(out, ev.name);
      out += ",\"cat\":";
      append_json_string(out, span.category);
      append_fmt(out,
                 ",\"ph\":\"i\",\"ts\":%" PRId64 ",\"pid\":%" PRIu64
                 ",\"tid\":%" PRIu64 ",\"s\":\"t\",\"args\":{\"detail\":",
                 ev.at, span.actor, span.actor);
      append_json_string(out, ev.detail);
      out += "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

std::string histograms_to_csv(const Registry& registry) {
  std::string out = "name,count,min_us,max_us,mean_us,p50_us,p95_us,p99_us\n";
  for (const auto& [name, h] : registry.histograms()) {
    append_fmt(out, "%s,%" PRIu64 ",%" PRId64 ",%" PRId64 ",%.1f,%.1f,%.1f,%.1f\n",
               name.c_str(), h.count(), h.empty() ? 0 : h.min(),
               h.empty() ? 0 : h.max(), h.mean(), h.p50(), h.p95(), h.p99());
  }
  return out;
}

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Everything else
/// (dots, dashes, braces) becomes '_'.
std::string prom_name(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

/// Split a registry name "family{label}" into its parts; plain names keep
/// an empty label.
void split_family(const std::string& name, std::string* metric,
                  std::string* label) {
  const std::size_t brace = name.find('{');
  if (brace != std::string::npos && name.back() == '}') {
    *metric = name.substr(0, brace);
    *label = name.substr(brace + 1, name.size() - brace - 2);
  } else {
    *metric = name;
    label->clear();
  }
}

/// One HELP + TYPE pair per family, emitted before its first sample. HELP
/// carries the registry's original dotted name, so a scrape consumer can
/// map the sanitized Prometheus name back to the source metric.
void append_type_line(std::string& out, const std::string& metric,
                      const std::string& original, const char* type,
                      std::string* last_typed) {
  if (metric == *last_typed) return;
  *last_typed = metric;
  out += "# HELP ";
  out += metric;
  out += ' ';
  out += original;
  out += '\n';
  out += "# TYPE ";
  out += metric;
  out += ' ';
  out += type;
  out += '\n';
}

void append_sample(std::string& out, const std::string& metric,
                   const std::string& label_key, const std::string& label_value,
                   const char* value) {
  out += metric;
  if (!label_key.empty()) {
    out += '{';
    out += label_key;
    out += "=\"";
    out += prometheus_escape_label(label_value);
    out += "\"}";
  }
  out += ' ';
  out += value;
  out += '\n';
}

}  // namespace

std::string prometheus_escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string registry_to_prometheus(const Registry& registry) {
  std::string out;
  char value[64];
  std::string metric, label, last_typed;
  for (const auto& [name, counter] : registry.counters()) {
    split_family(name, &metric, &label);
    const std::string original = metric;
    metric = prom_name(metric);
    append_type_line(out, metric, original, "counter", &last_typed);
    std::snprintf(value, sizeof(value), "%" PRIu64, counter.value());
    append_sample(out, metric, label.empty() ? "" : "label", label, value);
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    split_family(name, &metric, &label);
    const std::string original = metric;
    metric = prom_name(metric);
    append_type_line(out, metric, original, "gauge", &last_typed);
    std::snprintf(value, sizeof(value), "%" PRId64, gauge.value());
    append_sample(out, metric, label.empty() ? "" : "label", label, value);
  }
  for (const auto& [name, h] : registry.histograms()) {
    metric = prom_name(name);
    append_type_line(out, metric, name, "summary", &last_typed);
    const double quantiles[3] = {h.p50(), h.p95(), h.p99()};
    const char* q_labels[3] = {"0.5", "0.95", "0.99"};
    for (int i = 0; i < 3; ++i) {
      std::snprintf(value, sizeof(value), "%.3f", quantiles[i]);
      append_sample(out, metric, "quantile", q_labels[i], value);
    }
    std::snprintf(value, sizeof(value), "%.3f", h.sum());
    append_sample(out, metric + "_sum", "", "", value);
    std::snprintf(value, sizeof(value), "%" PRIu64, h.count());
    append_sample(out, metric + "_count", "", "", value);
  }
  return out;
}

std::string histogram_buckets_to_csv(const std::string& name,
                                     const LatencyHistogram& histogram) {
  std::string out = "name,lower_us,upper_us,count\n";
  const auto& buckets = histogram.buckets();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    append_fmt(out, "%s,%" PRId64 ",%" PRId64 ",%" PRIu64 "\n", name.c_str(),
               LatencyHistogram::bucket_lower(i),
               LatencyHistogram::bucket_upper(i), buckets[i]);
  }
  return out;
}

}  // namespace p2pdrm::obs
