// Runtime telemetry for the threaded stack: event-loop stats export, the
// metric-naming convention, and a lightweight scoped-timer profiler.
//
// LoopStats is the quiescent snapshot of one ThreadTransport event loop
// (tasks run, timers fired, busy/idle wall time, queue high-water marks);
// export_loop_stats() publishes a vector of them into an obs::Registry so
// the same scrape/Prometheus path that serves protocol metrics also serves
// the runtime ones.
//
// The Profiler is deliberately minimal: begin()/end() (or the RAII Scope)
// append {name, t_us, phase} records to a per-thread buffer — no locks, no
// allocation past the buffer's growth — and aggregation happens once, at
// quiescence, into two deterministic renderings:
//
//   collapsed()     flamegraph collapsed-stack lines
//                   ("label;outer;inner <self_us>"), sorted, one per
//                   distinct stack, mergeable with standard flamegraph
//                   tooling;
//   chrome_trace()  Chrome trace_event JSON ("X" slices, one tid per
//                   registered thread), and merged_chrome_trace() splices
//                   those slices into an obs::Tracer export so protocol
//                   spans and runtime frames land on one timeline.
//
// When disabled (the default) every hook is a single relaxed atomic load;
// SimTransport runs never enable it, so deterministic outputs stay
// byte-identical. Aggregation is only safe at quiescence (threads joined),
// the same contract as Registry::counters().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/registry.h"

namespace p2pdrm::obs {

class Tracer;

/// Quiescent snapshot of one event loop's lifetime counters.
struct LoopStats {
  std::uint64_t tasks = 0;         // tasks run to completion
  std::uint64_t timers_fired = 0;  // timers promoted to the ready queue
  std::int64_t busy_us = 0;        // wall time spent inside tasks
  std::int64_t idle_us = 0;        // wall time parked in cv waits
  std::int64_t ready_peak = 0;     // ready-deque depth high-water
  std::int64_t timer_peak = 0;     // timer-heap depth high-water

  /// busy / (busy + idle); 0 when the loop never ran.
  double utilization() const {
    const double total =
        static_cast<double>(busy_us) + static_cast<double>(idle_us);
    return total <= 0 ? 0.0
                      : static_cast<double>(busy_us) / total;
  }
};

/// Publish loop stats into a registry under `prefix` (e.g. "transport"):
/// counters "<prefix>.loop.tasks{N}" / "<prefix>.loop.timers_fired{N}"
/// (delta-incremented, so repeated exports of a monotonically growing
/// source never double-count), gauges for busy/idle/peaks/utilization, and
/// optionally the merged post-to-run latency histogram as
/// "<prefix>.sched_latency_us". Safe to call from a scrape tick.
void export_loop_stats(Registry& registry, const std::string& prefix,
                       const std::vector<LoopStats>& loops,
                       const LatencyHistogram* sched_latency);

/// The repo's metric naming convention, asserted by obs_test:
///   - dot-separated segments: "subsystem.name" or deeper;
///   - the first segment is the owning subsystem, lowercase
///     ("net", "store", "transport", ...);
///   - later segments are [A-Za-z0-9_]+ (round names like LOGIN1 are
///     legitimate segments);
///   - no segment is purely numeric — per-instance dimensions belong in a
///     family label ("server.queue.depth{3}"), never in the name;
///   - at most one trailing "{label}", label chars [A-Za-z0-9_.:-];
///   - quantities carry their unit as a suffix (_us, _bytes, _permille) —
///     mechanical checking stops at the shape, the unit rule is enforced
///     by the name inventory in obs_test.cpp.
bool metric_name_ok(const std::string& name);

class Profiler {
 public:
  /// Per-thread event cap; past it frames are counted as dropped, never
  /// recorded (bounded memory under runaway load).
  static constexpr std::size_t kMaxEventsPerThread = 1u << 16;

  static Profiler& global();

  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Enable the global profiler iff the env var is set; returns the value
  /// (the collapsed-stack output path) or "" when unset.
  static std::string enable_global_from_env(
      const char* env = "P2PDRM_PROFILE_OUT");

  /// Name this thread's buffer ("loop-0", "macro-worker-3"). A thread that
  /// records without attaching gets "thread-<n>". No-op while disabled.
  void attach_thread(const std::string& label);

  /// `name` must outlive aggregation — use string literals.
  void begin(const char* name);
  void end(const char* name);

  /// RAII frame; zero-cost (one relaxed load) when the profiler is off.
  class Scope {
   public:
    Scope(Profiler& profiler, const char* name)
        : profiler_(profiler.enabled() ? &profiler : nullptr), name_(name) {
      if (profiler_ != nullptr) profiler_->begin(name_);
    }
    ~Scope() {
      if (profiler_ != nullptr) profiler_->end(name_);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Profiler* profiler_;
    const char* name_;
  };

  // --- aggregation (quiescent: recording threads joined or parked) ---

  /// Flamegraph collapsed-stack lines, lexicographically sorted:
  /// "label;frame;frame <self_us>\n". Deterministic for given buffers.
  std::string collapsed() const;
  /// Chrome trace_event document of all recorded frames ("X" slices,
  /// pid kChromePid, tid = thread registration order).
  std::string chrome_trace() const;
  /// The slices alone ("{...},\n{...}"), for splicing into another trace.
  std::string chrome_trace_events() const;

  std::uint64_t recorded() const;
  std::uint64_t dropped() const;
  /// Drop all buffers and detach every thread (quiescent only).
  void reset();

  /// pid under which profiler threads appear in Chrome traces — far above
  /// any NodeId the tracer uses as a pid.
  static constexpr std::uint64_t kChromePid = 9999999;

 private:
  struct Event {
    const char* name;
    std::int64_t t_us;
    bool begin;
  };
  struct ThreadLog {
    std::string label;
    std::vector<Event> events;
    std::uint64_t dropped = 0;
  };

  ThreadLog* log_for_current_thread(const char* fallback_label);
  std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> generation_{1};
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  mutable std::mutex mu_;  // guards logs_ growth; appends are thread-local
  std::vector<std::unique_ptr<ThreadLog>> logs_;
};

/// Tracer spans and profiler frames on one Chrome-trace timeline: the
/// tracer's export with the profiler's slices spliced into the same
/// "traceEvents" array.
std::string merged_chrome_trace(const Tracer& tracer, const Profiler& profiler);

/// Tiny fopen/fwrite helper (obs cannot depend on bench_common).
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace p2pdrm::obs
