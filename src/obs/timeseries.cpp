#include "obs/timeseries.h"

#include <cinttypes>
#include <cstdio>

namespace p2pdrm::obs {

TimeSeries::TimeSeries(std::size_t capacity_per_series)
    : capacity_(capacity_per_series == 0 ? 1 : capacity_per_series) {}

void TimeSeries::set_scrape_filters(std::vector<std::string> filters) {
  filters_ = std::move(filters);
}

bool TimeSeries::admitted(const std::string& name) const {
  if (filters_.empty()) return true;
  for (const std::string& f : filters_) {
    if (!f.empty() && f.back() == '*') {
      if (name.compare(0, f.size() - 1, f, 0, f.size() - 1) == 0) return true;
    } else if (name == f) {
      return true;
    }
  }
  return false;
}

void TimeSeries::push(const std::string& name, util::SimTime at, double value) {
  std::deque<TimePoint>& points = series_[name];
  if (points.size() >= capacity_) {
    points.pop_front();
    ++dropped_;
  }
  points.push_back(TimePoint{at, value});
}

void TimeSeries::record(const std::string& series, util::SimTime at,
                        double value) {
  push(series, at, value);
}

void TimeSeries::scrape(const Registry& registry, util::SimTime at) {
  ++scrapes_;
  for (const auto& [name, counter] : registry.counters()) {
    if (!admitted(name)) continue;
    push(name, at, static_cast<double>(counter.value()));
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    if (!admitted(name)) continue;
    push(name, at, static_cast<double>(gauge.value()));
  }
  for (const auto& [name, hist] : registry.histograms()) {
    if (!admitted(name)) continue;
    push(name + ".count", at, static_cast<double>(hist.count()));
    push(name + ".p50", at, hist.p50());
    push(name + ".p95", at, hist.p95());
    push(name + ".p99", at, hist.p99());
  }
}

std::vector<std::string> TimeSeries::names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, points] : series_) out.push_back(name);
  return out;
}

const std::deque<TimePoint>* TimeSeries::series(const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

std::string TimeSeries::to_csv() const {
  std::string out = "series,t_us,value\n";
  char buf[128];
  for (const auto& [name, points] : series_) {
    for (const TimePoint& p : points) {
      std::snprintf(buf, sizeof(buf), ",%" PRId64 ",%.3f\n", p.at, p.value);
      out += name;
      out += buf;
    }
  }
  return out;
}

}  // namespace p2pdrm::obs
