#include "obs/registry.h"

#include <cstdio>

namespace p2pdrm::obs {

Registry::Registry(const Registry& other) {
  std::lock_guard<std::mutex> lk(other.mu_);
  counters_ = other.counters_;
  gauges_ = other.gauges_;
  histograms_ = other.histograms_;
}

Registry& Registry::operator=(const Registry& other) {
  if (this == &other) return *this;
  // Copy under other's lock first, then swap in under ours: no lock-order
  // cycle between two registries.
  std::map<std::string, Counter> counters;
  std::map<std::string, Gauge> gauges;
  std::map<std::string, LatencyHistogram> histograms;
  {
    std::lock_guard<std::mutex> lk(other.mu_);
    counters = other.counters_;
    gauges = other.gauges_;
    histograms = other.histograms_;
  }
  std::lock_guard<std::mutex> lk(mu_);
  counters_ = std::move(counters);
  gauges_ = std::move(gauges);
  histograms_ = std::move(histograms);
  return *this;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_[name];
}

Counter& Registry::counter(const std::string& family, const std::string& label) {
  return counter(family + "{" + label + "}");
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return gauges_[name];
}

Gauge& Registry::gauge(const std::string& family, const std::string& label) {
  return gauge(family + "{" + label + "}");
}

LatencyHistogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return histograms_[name];
}

const Counter* Registry::find_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const LatencyHistogram* Registry::find_histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, const Counter*>> Registry::family(
    const std::string& family) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<std::string, const Counter*>> out;
  const std::string prefix = family + "{";
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    if (it->first.back() != '}') continue;
    out.emplace_back(it->first.substr(prefix.size(),
                                      it->first.size() - prefix.size() - 1),
                     &it->second);
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

void Registry::merge_from(const Registry& other) {
  // Copy under other's lock first, then fold in under ours: no lock-order
  // cycle between two registries (same discipline as operator=).
  std::map<std::string, Counter> counters;
  std::map<std::string, Gauge> gauges;
  std::map<std::string, LatencyHistogram> histograms;
  {
    std::lock_guard<std::mutex> lk(other.mu_);
    counters = other.counters_;
    gauges = other.gauges_;
    histograms = other.histograms_;
  }
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters) counters_[name].inc(c.value());
  for (const auto& [name, g] : gauges) gauges_[name].set_max(g.value());
  for (const auto& [name, h] : histograms) histograms_[name].merge(h);
}

std::string Registry::to_string() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  char buf[160];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "%s=%llu\n", name.c_str(),
                  static_cast<unsigned long long>(c.value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%s=%lld\n", name.c_str(),
                  static_cast<long long>(g.value()));
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(buf, sizeof(buf), "%s count=%llu p50=%.0f p95=%.0f p99=%.0f\n",
                  name.c_str(), static_cast<unsigned long long>(h.count()),
                  h.p50(), h.p95(), h.p99());
    out += buf;
  }
  return out;
}

}  // namespace p2pdrm::obs
