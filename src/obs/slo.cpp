#include "obs/slo.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace p2pdrm::obs {
namespace {

// Two points always correlate perfectly, so demand at least three buckets
// before reporting an r — early windows would otherwise pin |r|max at 1.
bool pearson(std::uint64_t n, double sx, double sy, double sxx, double syy,
             double sxy, double* r) {
  if (n < 3) return false;
  const double dn = static_cast<double>(n);
  const double cov = sxy - sx * sy / dn;
  const double vx = sxx - sx * sx / dn;
  const double vy = syy - sy * sy / dn;
  if (vx <= 0.0 || vy <= 0.0) return false;
  *r = cov / std::sqrt(vx * vy);
  return true;
}

}  // namespace

SloMonitor::SloMonitor(std::vector<SloObjective> objectives)
    : objectives_(std::move(objectives)) {
  for (const SloObjective& o : objectives_) {
    rounds_[o.round].objective = o;
  }
}

void SloMonitor::observe(std::string_view round, util::SimTime now,
                         std::int64_t latency_us) {
  (void)now;
  const auto it = rounds_.find(round);
  if (it == rounds_.end()) return;
  RoundState& state = it->second;
  state.hist.record(latency_us);
  ++state.cur_count;
  state.cur_sum += static_cast<double>(latency_us);
  const SloObjective& o = state.objective;
  if (o.p95_target_us > 0 && latency_us > o.p95_target_us) ++state.cur_over95;
  if (o.p99_target_us > 0 && latency_us > o.p99_target_us) ++state.cur_over99;
}

void SloMonitor::tick(util::SimTime now, double load) {
  ++ticks_;
  for (auto& [name, state] : rounds_) {
    TickBucket bucket;
    bucket.at = now;
    bucket.count = state.cur_count;
    bucket.over95 = state.cur_over95;
    bucket.over99 = state.cur_over99;
    bucket.mean_latency =
        state.cur_count == 0 ? 0.0
                             : state.cur_sum / static_cast<double>(state.cur_count);
    bucket.load = load;
    if (state.cur_count > 0) {
      state.sx += bucket.load;
      state.sy += bucket.mean_latency;
      state.sxx += bucket.load * bucket.load;
      state.syy += bucket.mean_latency * bucket.mean_latency;
      state.sxy += bucket.load * bucket.mean_latency;
      ++state.n;
    }
    state.cur_count = state.cur_over95 = state.cur_over99 = 0;
    state.cur_sum = 0;
    state.window.push_back(bucket);
    while (!state.window.empty() &&
           state.window.front().at <= now - state.objective.window) {
      state.window.pop_front();
    }

    std::uint64_t total = 0, over95 = 0, over99 = 0;
    double wsx = 0, wsy = 0, wsxx = 0, wsyy = 0, wsxy = 0;
    std::uint64_t wn = 0;
    for (const TickBucket& b : state.window) {
      total += b.count;
      over95 += b.over95;
      over99 += b.over99;
      if (b.count > 0) {
        wsx += b.load;
        wsy += b.mean_latency;
        wsxx += b.load * b.load;
        wsyy += b.mean_latency * b.mean_latency;
        wsxy += b.load * b.mean_latency;
        ++wn;
      }
    }
    const double dtotal = static_cast<double>(total);
    state.burn95 = total == 0 ? 0.0
                              : (static_cast<double>(over95) / dtotal) /
                                    kP95Allowance;
    state.burn99 = total == 0 ? 0.0
                              : (static_cast<double>(over99) / dtotal) /
                                    kP99Allowance;
    state.worst_burn95 = std::max(state.worst_burn95, state.burn95);
    state.worst_burn99 = std::max(state.worst_burn99, state.burn99);

    double r = 0;
    state.window_r_valid = pearson(wn, wsx, wsy, wsxx, wsyy, wsxy, &r);
    state.window_r = state.window_r_valid ? r : 0.0;
    if (state.window_r_valid) {
      state.max_abs_window_r =
          std::max(state.max_abs_window_r, std::fabs(state.window_r));
    }
  }
}

SloMonitor::RoundStatus SloMonitor::status(std::string_view round) const {
  RoundStatus out;
  const auto it = rounds_.find(round);
  if (it == rounds_.end()) return out;
  const RoundState& state = it->second;
  const SloObjective& o = state.objective;
  out.count = state.hist.count();
  out.p95_us = state.hist.p95();
  out.p99_us = state.hist.p99();
  out.p95_ok = o.p95_target_us <= 0 ||
               out.p95_us <= static_cast<double>(o.p95_target_us);
  out.p99_ok = o.p99_target_us <= 0 ||
               out.p99_us <= static_cast<double>(o.p99_target_us);
  out.burn95 = state.burn95;
  out.burn99 = state.burn99;
  out.worst_burn95 = state.worst_burn95;
  out.worst_burn99 = state.worst_burn99;
  out.window_r_valid = state.window_r_valid;
  out.window_r = state.window_r;
  out.max_abs_window_r = state.max_abs_window_r;
  out.run_r_valid = pearson(state.n, state.sx, state.sy, state.sxx, state.syy,
                            state.sxy, &out.run_r);
  if (!out.run_r_valid) out.run_r = 0.0;
  return out;
}

bool SloMonitor::within_budget() const {
  for (const SloObjective& o : objectives_) {
    const RoundStatus s = status(o.round);
    if (!s.p95_ok || !s.p99_ok) return false;
  }
  return true;
}

std::string SloMonitor::report() const {
  std::string out =
      "round      count  p95_ms  tgt_ms  p99_ms  tgt_ms  burn95  burn99"
      "   r_win   r_run  |r|max  status\n";
  char buf[256];
  for (const SloObjective& o : objectives_) {
    const RoundStatus s = status(o.round);
    char rwin[16], rrun[16];
    if (s.window_r_valid) {
      std::snprintf(rwin, sizeof(rwin), "%+.3f", s.window_r);
    } else {
      std::snprintf(rwin, sizeof(rwin), "n/a");
    }
    if (s.run_r_valid) {
      std::snprintf(rrun, sizeof(rrun), "%+.3f", s.run_r);
    } else {
      std::snprintf(rrun, sizeof(rrun), "n/a");
    }
    std::snprintf(buf, sizeof(buf),
                  "%-8s %7" PRIu64 " %7.1f %7.1f %7.1f %7.1f %7.2f %7.2f %7s"
                  " %7s %7.3f  %s\n",
                  o.round.c_str(), s.count, s.p95_us / 1000.0,
                  static_cast<double>(o.p95_target_us) / 1000.0,
                  s.p99_us / 1000.0,
                  static_cast<double>(o.p99_target_us) / 1000.0, s.burn95,
                  s.burn99, rwin, rrun, s.max_abs_window_r,
                  s.p95_ok && s.p99_ok ? "PASS" : "FAIL");
    out += buf;
  }
  return out;
}

}  // namespace p2pdrm::obs
