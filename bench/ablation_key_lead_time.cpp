// Ablation: content-key delivery — announce lead, packet loss, and the
// multi-parent redundancy of peer-division multiplexing (§IV-E).
//
// "New instances of the evolving content key are sent some amount of time
// in advance of their use" and "the underlying P2P protocol ensures
// reliable distribution of content key ... a peer may receive multiple
// copies of the same content key from its parents" (duplicates discarded by
// serial). Key blobs here are fire-and-forget datagrams, so with a single
// parent a lost blob strands the whole subtree; a second parent per peer
// delivers a redundant copy along an independent path. This bench measures
// the fraction of peers holding the key by its activation instant across
// loss rates, with 1 vs 2 parents per peer — real crypto, real network.
#include <cstdio>

#include "net/network.h"
#include "net/service_nodes.h"
#include "p2p/peer.h"
#include "sim/simulation.h"
#include "sim_run.h"

using namespace p2pdrm;

namespace {

struct Tree {
  std::vector<std::unique_ptr<net::PeerNode>> nodes;  // nodes[0] = root
};

/// Full fanout-ary tree; with `parents_per_peer` == 2, every non-root peer
/// also joins a second, independent upstream peer.
Tree build_tree(net::Network& network, std::size_t n, std::size_t fanout,
                int parents_per_peer, crypto::SecureRandom& rng) {
  const crypto::RsaKeyPair cm_keys = crypto::generate_rsa_keypair(rng, 512);
  const crypto::RsaKeyPair client_keys = crypto::generate_rsa_keypair(rng, 512);
  Tree tree;
  for (std::size_t i = 0; i < n; ++i) {
    p2p::PeerConfig cfg;
    cfg.node = static_cast<util::NodeId>(i);
    cfg.addr = util::NetAddr{0x0a000000u + static_cast<std::uint32_t>(i)};
    cfg.channel = 1;
    cfg.capacity = 64;  // ample headroom: secondary parents skew to low ranks
    tree.nodes.push_back(std::make_unique<net::PeerNode>(
        std::make_unique<p2p::Peer>(cfg, client_keys, cm_keys.pub, rng.fork()),
        network));
    network.attach(cfg.node, cfg.addr, tree.nodes.back().get());
  }

  const auto join = [&](std::size_t child, std::size_t parent) {
    core::ChannelTicket t;
    t.user_in = child;
    t.channel_id = 1;
    t.client_public_key = client_keys.pub;
    t.net_addr = tree.nodes[child]->peer().config().addr;
    t.expiry_time = 365 * util::kDay;
    const auto ticket = core::SignedChannelTicket::sign(t, cm_keys.priv);
    const core::JoinRequest req = tree.nodes[child]->peer().make_join_request(ticket);
    const core::JoinResponse resp = tree.nodes[parent]->peer().handle_join(
        req, t.net_addr, static_cast<util::NodeId>(child), 0);
    if (resp.error != core::DrmError::kOk ||
        !tree.nodes[child]->peer().complete_join(static_cast<util::NodeId>(parent),
                                                 resp)) {
      std::fprintf(stderr, "tree build failed\n");
      std::exit(1);
    }
  };

  for (std::size_t i = 1; i < n; ++i) {
    join(i, (i - 1) / fanout);
    if (parents_per_peer >= 2 && i >= 2) {
      // Second parent: a deterministic pseudo-random upstream peer.
      const std::size_t second = rng.uniform(i - 1);
      if (second != (i - 1) / fanout) join(i, second);
    }
  }
  return tree;
}

}  // namespace

int main(int argc, char** argv) {
  bench::SimRun run("ablation_key_lead_time", argc, argv);
  std::printf("\n=== Ablation — key delivery under loss: lead time and "
              "multi-parent redundancy ===\n");
  std::printf("(341-peer 4-ary tree, per-hop RTT median 80ms, lead 3s)\n\n");
  std::printf("%-8s %-10s %12s %14s\n", "loss", "parents", "on-time", "stranded");

  const std::size_t n = 341;
  const util::SimTime lead = 3 * util::kSecond;

  run.begin_artifact();
  bench::JsonWriter& j = run.json();
  j.begin_array();
  for (const double loss : {0.0, 0.02, 0.05, 0.15}) {
    for (const int parents : {1, 2}) {
      sim::Simulation sim;
      net::LinkConfig link;
      link.latency.floor = 20 * util::kMillisecond;
      link.latency.median = 80 * util::kMillisecond;
      link.latency.sigma = 0.6;
      link.loss = loss / 2;  // applied at both endpoints -> ~`loss` per hop
      crypto::SecureRandom rng(static_cast<std::uint64_t>(loss * 1000) + parents);
      net::Network network(sim, link, rng.fork());
      Tree tree = build_tree(network, n, 4, parents, rng);

      crypto::SecureRandom key_rng(9);
      const core::ContentKey key = core::generate_content_key(key_rng, 7, lead);
      tree.nodes[0]->announce_key(key);
      sim.run();

      std::size_t have = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (tree.nodes[i]->peer().knows_serial(7)) ++have;
      }
      std::printf("%6.0f%% %-10d %11.1f%% %10zu peers\n", loss * 100, parents,
                  100.0 * static_cast<double>(have) / static_cast<double>(n),
                  n - have);
      j.begin_object();
      j.kv("loss", loss);
      j.kv("parents", parents);
      j.kv("on_time_fraction",
           static_cast<double>(have) / static_cast<double>(n));
      j.kv("stranded_peers", static_cast<std::uint64_t>(n - have));
      j.end_object();
    }
  }
  j.end_array();
  run.finish_artifact();

  std::printf("\nexpected shape: with one parent, a single lost blob strands an "
              "entire subtree\n(loss amplifies with depth); with two parents the "
              "duplicate-discard mechanism\nturns redundancy into reliability, "
              "matching the paper's multi-parent design.\n");
  return 0;
}
