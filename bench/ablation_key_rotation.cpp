// Ablation: content-key rotation interval (§IV-E).
//
// The paper rotates the channel's symmetric key every minute to bound the
// damage of a leaked key (forward secrecy). Faster rotation = smaller
// exposure window but more pair-wise re-encryption work at every overlay
// hop. This bench builds a REAL distribution tree (p2p::Peer objects, real
// AES/HMAC wraps per link) and measures, per rotation interval: key blobs
// sent, bytes of key traffic, and wall-clock CPU for relaying one hour's
// worth of rotations through the whole tree.
#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <vector>

#include "core/content.h"
#include "crypto/rsa.h"
#include "p2p/peer.h"
#include "sim_run.h"

using namespace p2pdrm;

namespace {

struct Tree {
  std::vector<std::unique_ptr<p2p::Peer>> peers;  // peers[0] is the root
  std::vector<std::vector<std::size_t>> children;
  std::size_t link_count = 0;
};

/// Build a fanout-f tree of n peers with real session keys on every link.
Tree build_tree(std::size_t n, std::size_t fanout, crypto::SecureRandom& rng) {
  const crypto::RsaKeyPair cm_keys = crypto::generate_rsa_keypair(rng, 512);
  // One client key pair shared across simulated peers: keygen cost is not
  // what this bench measures, per-link session keys are still unique.
  const crypto::RsaKeyPair client_keys = crypto::generate_rsa_keypair(rng, 512);

  Tree tree;
  tree.children.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p2p::PeerConfig cfg;
    cfg.node = static_cast<util::NodeId>(i);
    cfg.addr = util::NetAddr{0x0a000000u + static_cast<std::uint32_t>(i)};
    cfg.channel = 1;
    cfg.capacity = fanout;
    tree.peers.push_back(std::make_unique<p2p::Peer>(cfg, client_keys, cm_keys.pub,
                                                     rng.fork()));
  }
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t parent = (i - 1) / fanout;
    core::ChannelTicket t;
    t.user_in = i;
    t.channel_id = 1;
    t.client_public_key = client_keys.pub;
    t.net_addr = tree.peers[i]->config().addr;
    t.expiry_time = 365 * util::kDay;
    const auto ticket = core::SignedChannelTicket::sign(t, cm_keys.priv);
    const core::JoinRequest req = tree.peers[i]->make_join_request(ticket);
    const core::JoinResponse resp = tree.peers[parent]->handle_join(
        req, tree.peers[i]->config().addr, tree.peers[i]->config().node, 0);
    if (resp.error != core::DrmError::kOk ||
        !tree.peers[i]->complete_join(static_cast<util::NodeId>(parent), resp)) {
      std::fprintf(stderr, "tree build failed at %zu\n", i);
      std::exit(1);
    }
    tree.children[parent].push_back(i);
    ++tree.link_count;
  }
  return tree;
}

}  // namespace

int main(int argc, char** argv) {
  bench::SimRun run("ablation_key_rotation", argc, argv);
  bench::print_header("Ablation — content-key rotation interval (real crypto)");
  const double scale = bench::scale_factor();
  const std::size_t n = std::max<std::size_t>(50, static_cast<std::size_t>(1000 * scale));
  const std::size_t fanout = 4;
  crypto::SecureRandom rng(run.u64_flag("seed", 7));
  Tree tree = build_tree(n, fanout, rng);
  std::printf("# tree: %zu peers, fanout %zu, %zu encrypted links\n", n, fanout,
              tree.link_count);

  std::printf("\n%-12s %10s %12s %14s %12s %16s\n", "interval", "rotations/h",
              "blobs/h", "key bytes/h", "relay CPU", "exposure window");

  run.begin_artifact();
  bench::JsonWriter& j = run.json();
  j.begin_array();
  for (const util::SimTime interval :
       {10 * util::kSecond, 30 * util::kSecond, util::kMinute, 5 * util::kMinute,
        15 * util::kMinute}) {
    const std::size_t rotations =
        static_cast<std::size_t>(util::kHour / interval);
    std::size_t blobs = 0, bytes = 0;
    crypto::SecureRandom key_rng(interval);

    const auto start = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < rotations; ++k) {
      const core::ContentKey key = core::generate_content_key(
          key_rng, static_cast<std::uint8_t>(k), static_cast<util::SimTime>(k) * interval);
      // Relay through the whole tree: root announces, every peer re-wraps.
      std::deque<std::pair<std::size_t, p2p::Outgoing>> frontier;
      for (p2p::Outgoing& o : tree.peers[0]->announce_key(key)) {
        frontier.push_back({0, std::move(o)});
      }
      while (!frontier.empty()) {
        auto [from, out] = std::move(frontier.front());
        frontier.pop_front();
        ++blobs;
        bytes += out.payload.size();
        auto forwarded = tree.peers[out.to]->handle_key_blob(
            static_cast<util::NodeId>(from), out.payload);
        for (p2p::Outgoing& f : forwarded) frontier.push_back({out.to, std::move(f)});
      }
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);

    char label[32];
    std::snprintf(label, sizeof(label), "%llds",
                  static_cast<long long>(interval / util::kSecond));
    std::printf("%-12s %10zu %12zu %14zu %10lldms %15llds\n", label, rotations,
                blobs, bytes, static_cast<long long>(elapsed.count()),
                static_cast<long long>(interval / util::kSecond));

    j.begin_object();
    j.kv("interval_seconds", static_cast<std::int64_t>(interval / util::kSecond));
    j.kv("rotations_per_hour", static_cast<std::uint64_t>(rotations));
    j.kv("blobs_per_hour", static_cast<std::uint64_t>(blobs));
    j.kv("key_bytes_per_hour", static_cast<std::uint64_t>(bytes));
    j.kv("relay_cpu_ms", static_cast<std::int64_t>(elapsed.count()));
    j.end_object();
  }
  j.end_array();
  run.finish_artifact();

  std::printf("\ntradeoff: halving the interval doubles key traffic and per-hop "
              "crypto work\nwhile halving how long a leaked content key stays "
              "useful (the exposure window).\nthe paper's 1-minute default "
              "keeps relay cost trivial next to the media stream.\n");
  return 0;
}
