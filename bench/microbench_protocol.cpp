// Protocol-operation microbenchmarks: what one ticket issue, verification,
// policy evaluation, or full protocol exchange costs at the managers and
// peers. The per-request means feed sim::ServiceCosts.
#include <benchmark/benchmark.h>

#include "client/testbed.h"
#include "core/secure_channel.h"

using namespace p2pdrm;

namespace {

/// Shared testbed with one user, channels, and a logged-in client.
struct Fixture {
  Fixture() : tb(make_config()) {
    tb.add_user("bench@example.com", "pw");
    region = tb.geo().region_at(0);
    tb.add_regional_channel(1, "bench-channel", region);
    tb.start_channel_server(1);
    client = &tb.add_client("bench@example.com", "pw", region);
    if (client->login() != core::DrmError::kOk) std::abort();
    if (client->switch_channel(1) != core::DrmError::kOk) std::abort();
  }

  static client::TestbedConfig make_config() {
    client::TestbedConfig cfg;
    cfg.seed = 555;
    cfg.key_bits = 1024;  // production-class key size for realistic costs
    return cfg;
  }

  client::Testbed tb;
  geo::RegionId region = 0;
  client::Client* client = nullptr;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_FullLogin(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    if (f.client->login() != core::DrmError::kOk) state.SkipWithError("login failed");
  }
}
BENCHMARK(BM_FullLogin)->Unit(benchmark::kMillisecond);

void BM_FullChannelSwitch(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    if (f.client->switch_channel(1) != core::DrmError::kOk) {
      state.SkipWithError("switch failed");
    }
  }
}
BENCHMARK(BM_FullChannelSwitch)->Unit(benchmark::kMillisecond);

void BM_UserTicketVerify(benchmark::State& state) {
  Fixture& f = fixture();
  const core::SignedUserTicket& ticket = *f.client->user_ticket();
  const crypto::RsaPublicKey& key = f.tb.user_manager().public_key();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ticket.verify(key));
  }
}
BENCHMARK(BM_UserTicketVerify);

void BM_UserTicketDecode(benchmark::State& state) {
  Fixture& f = fixture();
  const util::Bytes wire = f.client->user_ticket()->encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SignedUserTicket::decode(wire));
  }
}
BENCHMARK(BM_UserTicketDecode);

void BM_ChannelTicketIssue(benchmark::State& state) {
  // The Channel Manager's SWITCH2 handler end to end (validation, policy
  // evaluation, signing, logging) — the cost that sizes a CM farm.
  Fixture& f = fixture();
  const util::Bytes user_ticket = f.client->user_ticket()->encode();
  core::Switch1Request r1;
  r1.user_ticket = user_ticket;
  r1.channel_id = 1;
  for (auto _ : state) {
    const core::Switch1Response resp1 =
        f.tb.switch1(0, r1, f.client->config().addr);
    benchmark::DoNotOptimize(resp1);
    if (resp1.error != core::DrmError::kOk) state.SkipWithError("switch1 failed");
  }
}
BENCHMARK(BM_ChannelTicketIssue)->Unit(benchmark::kMicrosecond);

void BM_PolicyEvaluation(benchmark::State& state) {
  Fixture& f = fixture();
  const core::ChannelRecord* channel = f.tb.policy_manager().find_channel(1);
  const core::AttributeSet& attrs = f.client->user_ticket()->ticket.attributes;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::evaluate_policies(*channel, attrs, 0));
  }
}
BENCHMARK(BM_PolicyEvaluation);

void BM_PolicyEvaluationManyPolicies(benchmark::State& state) {
  // A channel with a deep policy stack (per-program blackouts, tiers, ...).
  Fixture& f = fixture();
  core::ChannelRecord channel = *f.tb.policy_manager().find_channel(1);
  for (int i = 0; i < state.range(0); ++i) {
    core::Policy p;
    p.priority = 60 + static_cast<std::uint32_t>(i);
    p.terms.push_back({core::kAttrSubscription,
                       core::AttrValue::of("tier-" + std::to_string(i))});
    p.action = core::PolicyAction::kReject;
    channel.policies.push_back(p);
    core::Attribute a;
    a.name = core::kAttrSubscription;
    a.value = core::AttrValue::of("tier-" + std::to_string(i));
    channel.attributes.add(a);
  }
  const core::AttributeSet& attrs = f.client->user_ticket()->ticket.attributes;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::evaluate_policies(channel, attrs, 0));
  }
}
BENCHMARK(BM_PolicyEvaluationManyPolicies)->Arg(10)->Arg(100);

void BM_PeerJoinHandshake(benchmark::State& state) {
  // Target-peer side of JOIN: ticket verify + session key mint + RSA
  // encrypt + content-key wrap. This is the paper's "delegated
  // authorization" cost at peers.
  Fixture& f = fixture();
  crypto::SecureRandom rng(1);
  const crypto::RsaKeyPair cm_keys = crypto::generate_rsa_keypair(rng, 1024);
  const crypto::RsaKeyPair client_keys = crypto::generate_rsa_keypair(rng, 1024);
  (void)f;

  p2p::PeerConfig cfg;
  cfg.node = 1;
  cfg.addr = util::NetAddr{0x0a000001};
  cfg.channel = 1;
  cfg.capacity = 1u << 30;  // never refuse
  p2p::Peer target(cfg, client_keys, cm_keys.pub, rng.fork());
  target.install_key(core::generate_content_key(rng, 0, 0));

  core::ChannelTicket t;
  t.user_in = 9;
  t.channel_id = 1;
  t.client_public_key = client_keys.pub;
  t.net_addr = util::NetAddr{0x0a000002};
  t.expiry_time = 365 * util::kDay;
  const auto ticket = core::SignedChannelTicket::sign(t, cm_keys.priv);
  core::JoinRequest req;
  req.channel_ticket = ticket.encode();

  util::NodeId joiner = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        target.handle_join(req, t.net_addr, joiner++, 0));
  }
}
BENCHMARK(BM_PeerJoinHandshake)->Unit(benchmark::kMicrosecond);

void BM_KeyRelayHop(benchmark::State& state) {
  // One overlay hop of content-key relay: unwrap + re-wrap per child.
  crypto::SecureRandom rng(2);
  const core::SessionKey parent_link = core::generate_session_key(rng);
  const core::ContentKey key = core::generate_content_key(rng, 1, 0);
  const core::SessionKey child_link = core::generate_session_key(rng);
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    const util::Bytes blob = core::wrap_content_key(key, parent_link, nonce++);
    const auto unwrapped = core::unwrap_content_key(blob, parent_link);
    benchmark::DoNotOptimize(core::wrap_content_key(*unwrapped, child_link, nonce++));
  }
}
BENCHMARK(BM_KeyRelayHop);

void BM_SecureChannelHandshake(benchmark::State& state) {
  // Cost of enforcing the SSL-like protocol for infrastructure traffic
  // (§IV-G1): one RSA encrypt client-side + one RSA decrypt server-side.
  crypto::SecureRandom rng(4);
  const crypto::RsaKeyPair server = crypto::generate_rsa_keypair(rng, 1024);
  for (auto _ : state) {
    core::ClientHandshake ch = core::secure_channel_initiate(server.pub, rng);
    benchmark::DoNotOptimize(core::secure_channel_accept(ch.hello, server.priv));
  }
}
BENCHMARK(BM_SecureChannelHandshake)->Unit(benchmark::kMillisecond);

void BM_SecureChannelSealOpen(benchmark::State& state) {
  crypto::SecureRandom rng(5);
  const crypto::RsaKeyPair server = crypto::generate_rsa_keypair(rng, 1024);
  core::ClientHandshake ch = core::secure_channel_initiate(server.pub, rng);
  auto session = core::secure_channel_accept(ch.hello, server.priv);
  const util::Bytes msg = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const util::Bytes record = ch.session.seal(msg);
    benchmark::DoNotOptimize(session->open(record));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SecureChannelSealOpen)->Arg(256)->Arg(4096);

void BM_AttestationChecksum(benchmark::State& state) {
  crypto::SecureRandom rng(3);
  const util::Bytes binary = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const core::ChecksumParams params{0, static_cast<std::uint32_t>(state.range(0)), 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_attestation_checksum(binary, params));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AttestationChecksum)->Arg(65536)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
