// Shared helpers for the reproduction benches: the paper-scale macro-sim
// configuration, environment-variable scaling, and table printers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/macro_sim.h"

namespace p2pdrm::bench {

/// Scale factor for the week-long simulations. 1.0 reproduces the paper's
/// scale (7 days, ~25k peak concurrent users, 2 UMs + 4 CMs); smaller values
/// shrink the population for quick runs. Override with P2PDRM_SCALE.
inline double scale_factor() {
  if (const char* env = std::getenv("P2PDRM_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 1.0;
}

/// The paper's measurement setting (§VI): one week, diurnal swing peaking
/// around 25k concurrent users, 2 User Managers, 4 Channel Managers over 2
/// partitions, 200 channels.
inline sim::MacroSimConfig paper_config() {
  sim::MacroSimConfig cfg;
  const double scale = scale_factor();
  cfg.days = 7;
  cfg.peak_concurrent = 25000 * scale;
  cfg.num_channels = 200;
  cfg.user_manager_servers = 2;
  cfg.channel_manager_servers = 4;
  cfg.seed = 20080623;  // the paper's trace week started June 23rd, 2008
  return cfg;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_run_summary(const sim::MacroSimResult& r) {
  std::printf(
      "# sessions=%llu switches=%llu ct-renewals=%llu ut-renewals=%llu "
      "join-retries=%llu peak-concurrent=%.0f um-util=%.4f cm-util=%.4f\n",
      static_cast<unsigned long long>(r.sessions),
      static_cast<unsigned long long>(r.channel_switches),
      static_cast<unsigned long long>(r.ct_renewals),
      static_cast<unsigned long long>(r.ut_renewals),
      static_cast<unsigned long long>(r.join_retries), r.peak_observed_concurrency,
      r.um_utilization, r.cm_utilization);
}

}  // namespace p2pdrm::bench
