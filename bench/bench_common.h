// Shared helpers for the reproduction benches: the paper-scale macro-sim
// configuration, environment-variable scaling, and table printers.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/critical_path.h"
#include "obs/export.h"
#include "sim/macro_sim.h"

namespace p2pdrm::bench {

/// Scale factor for the week-long simulations. 1.0 reproduces the paper's
/// scale (7 days, ~25k peak concurrent users, 2 UMs + 4 CMs); smaller values
/// shrink the population for quick runs. Override with P2PDRM_SCALE.
inline double scale_factor() {
  if (const char* env = std::getenv("P2PDRM_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 1.0;
}

/// The paper's measurement setting (§VI): one week, diurnal swing peaking
/// around 25k concurrent users, 2 User Managers, 4 Channel Managers over 2
/// partitions, 200 channels.
inline sim::MacroSimConfig paper_config() {
  sim::MacroSimConfig cfg;
  const double scale = scale_factor();
  cfg.days = 7;
  cfg.peak_concurrent = 25000 * scale;
  cfg.num_channels = 200;
  cfg.user_manager_servers = 2;
  cfg.channel_manager_servers = 4;
  cfg.seed = 20080623;  // the paper's trace week started June 23rd, 2008
  return cfg;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Optional output path: `--flag=path` on the command line wins over the
/// environment variable; empty when neither is set.
inline std::string out_path(int argc, char** argv, const char* flag,
                            const char* env) {
  const std::string prefix = std::string(flag) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.compare(0, prefix.size(), prefix) == 0) {
      return arg.substr(prefix.size());
    }
  }
  if (const char* v = std::getenv(env)) return v;
  return {};
}

/// Minimal streaming JSON emitter for bench artifacts (BENCH_*.json).
/// Containers nest via begin_/end_; commas and key/value separators are
/// handled automatically. No external dependency, good enough for flat
/// result summaries — not a general-purpose serializer.
class JsonWriter {
 public:
  JsonWriter& begin_object() { item(); out_ += '{'; first_.push_back(true); return *this; }
  JsonWriter& end_object() { out_ += '}'; first_.pop_back(); return *this; }
  JsonWriter& begin_array() { item(); out_ += '['; first_.push_back(true); return *this; }
  JsonWriter& end_array() { out_ += ']'; first_.pop_back(); return *this; }

  JsonWriter& key(const std::string& k) {
    item();
    out_ += '"';
    append_escaped(k);
    out_ += "\": ";
    after_key_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& v) {
    item();
    out_ += '"';
    append_escaped(v);
    out_ += '"';
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(bool v) { item(); out_ += v ? "true" : "false"; return *this; }
  JsonWriter& value(double v) {
    item();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out_ += buf;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) { item(); out_ += std::to_string(v); return *this; }
  JsonWriter& value(std::int64_t v) { item(); out_ += std::to_string(v); return *this; }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }

  template <typename T>
  JsonWriter& kv(const std::string& k, T v) {
    return key(k).value(v);
  }

  /// The document so far plus a trailing newline (artifact convention).
  std::string str() const { return out_ + "\n"; }

 private:
  void item() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) out_ += ", ";
      first_.back() = false;
    }
  }
  void append_escaped(const std::string& s) {
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
  }

  std::string out_;
  std::vector<bool> first_;
  bool after_key_ = false;
};

inline void write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  std::printf("# wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

/// Round SLOs for the paper-scale macro-sim: generous targets (the paper's
/// curves sit near 0.4-1.5s) with a 6 h sliding window so burn rates and
/// the windowed correlation span a meaningful slice of the diurnal swing.
inline std::vector<obs::SloObjective> macro_slo_objectives() {
  const util::SimTime w = 6 * util::kHour;
  return {
      {"LOGIN1", 2 * util::kSecond, 5 * util::kSecond, w},
      {"LOGIN2", 3 * util::kSecond, 8 * util::kSecond, w},
      {"SWITCH1", 2 * util::kSecond, 5 * util::kSecond, w},
      {"SWITCH2", 3 * util::kSecond, 8 * util::kSecond, w},
      {"JOIN", 5 * util::kSecond, 13 * util::kSecond, w},
  };
}

/// Observability sinks for a macro-sim run, bundled so the benches can
/// declare one object and wire it into MacroSimConfig::obs.
struct MacroObs {
  obs::Tracer tracer;
  obs::TimeSeries timeseries;
  obs::SloMonitor slo{macro_slo_objectives()};

  /// `trace` enables span capture (sampled: every 2000th session plus every
  /// rotation epoch — a full week at paper scale stays bounded).
  void attach(sim::MacroSimConfig& cfg, bool trace) {
    if (trace) {
      cfg.obs.tracer = &tracer;
      cfg.obs.trace_session_every = 2000;
      cfg.obs.trace_rotation_every = 1;
    }
    cfg.obs.timeseries = &timeseries;
    cfg.obs.slo = &slo;
    // Whole-run round histograms and the key-rotation pipeline only — the
    // per-hour and peak/off-peak split histograms would add ~3500 series.
    timeseries.set_scrape_filters(
        {"macro.key.*", "macro.round.LOGIN1", "macro.round.LOGIN2",
         "macro.round.SWITCH1", "macro.round.SWITCH2", "macro.round.JOIN",
         "load.*"});
  }
};

/// Shared tail for the fig benches: SLO/correlation report, trace-driven
/// critical path, and the optional --trace-out / --timeseries-out exports.
inline void print_obs_reports(const MacroObs& obs, bool traced,
                              const std::string& trace_out,
                              const std::string& ts_out) {
  std::printf("\n--- SLO / load-correlation monitor ---\n%s",
              obs.slo.report().c_str());
  if (traced) {
    const analysis::CriticalPathReport cp =
        analysis::analyze_critical_path(obs.tracer);
    std::printf("\n--- critical path (traced sessions) ---\n%s",
                cp.to_table().c_str());
    if (!trace_out.empty()) {
      write_file(trace_out, obs::spans_to_chrome_trace(obs.tracer));
    }
  }
  if (!ts_out.empty()) write_file(ts_out, obs.timeseries.to_csv());
}

inline void print_run_summary(const sim::MacroSimResult& r) {
  std::printf(
      "# sessions=%llu switches=%llu ct-renewals=%llu ut-renewals=%llu "
      "join-retries=%llu peak-concurrent=%.0f um-util=%.4f cm-util=%.4f\n",
      static_cast<unsigned long long>(r.sessions),
      static_cast<unsigned long long>(r.channel_switches),
      static_cast<unsigned long long>(r.ct_renewals),
      static_cast<unsigned long long>(r.ut_renewals),
      static_cast<unsigned long long>(r.join_retries), r.peak_observed_concurrency,
      r.um_utilization, r.cm_utilization);
}

}  // namespace p2pdrm::bench
