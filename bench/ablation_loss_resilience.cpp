// Ablation: packet loss vs protocol completion (networked deployment).
//
// The paper's protocols are two-round request/response exchanges over an
// unreliable network; the client's timeout/retransmit loop is what makes
// them robust. This bench runs the REAL protocol stack (full crypto, real
// managers) over the simulated lossy network and sweeps the loss rate:
// completion rate, end-to-end login+switch+join time, and the retry bill.
#include <cstdio>
#include <optional>

#include "analysis/stats.h"
#include "net/deployment.h"
#include "sim_run.h"

using namespace p2pdrm;

namespace {

struct Outcome {
  bool ok = false;
  double seconds = 0;
};

Outcome run_one_viewer(net::Deployment& d, net::AsyncClient& client) {
  std::optional<core::DrmError> login_result;
  std::optional<core::DrmError> switch_result;
  const util::SimTime started = d.sim().now();
  client.login([&](core::DrmError err) {
    login_result = err;
    if (err != core::DrmError::kOk) {
      switch_result = err;
      return;
    }
    client.switch_channel(1, [&](core::DrmError err2) { switch_result = err2; });
  });
  const util::SimTime deadline = d.sim().now() + 5 * util::kMinute;
  while (!switch_result && d.sim().now() < deadline && d.sim().step()) {
  }
  Outcome out;
  out.ok = switch_result && *switch_result == core::DrmError::kOk;
  out.seconds = util::to_seconds(d.sim().now() - started);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::SimRun run("ablation_loss_resilience", argc, argv);
  std::printf("\n=== Ablation — packet loss vs protocol completion (real stack, "
              "simulated network) ===\n");
  std::printf("%-8s %10s %12s %12s %14s %14s\n", "loss", "viewers", "completed",
              "p50 time", "p95 time", "retransmits");

  run.begin_artifact();
  bench::JsonWriter& j = run.json();
  j.begin_array();
  for (const double loss : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    net::DeploymentConfig cfg;
    cfg.seed = run.u64_flag("seed", 7);
    cfg.default_link.latency.floor = 10 * util::kMillisecond;
    cfg.default_link.latency.median = 40 * util::kMillisecond;
    cfg.default_link.latency.sigma = 0.4;
    cfg.default_link.loss = loss;
    cfg.processing.light = 1 * util::kMillisecond;
    cfg.processing.heavy = 8 * util::kMillisecond;
    cfg.request_timeout = 400 * util::kMillisecond;
    cfg.max_retries = 10;

    net::Deployment d(cfg);
    const geo::RegionId region = d.geo().region_at(0);
    d.add_regional_channel(1, "event", region);
    d.start_channel_server(1);

    const int viewers = 40;
    int completed = 0;
    std::vector<double> times;
    for (int i = 0; i < viewers; ++i) {
      const std::string email = "v" + std::to_string(i) + "@example.com";
      d.add_user(email, "pw");
      net::AsyncClient& c = d.add_client(email, "pw", region);
      const Outcome out = run_one_viewer(d, c);
      if (out.ok) {
        ++completed;
        times.push_back(out.seconds);
        d.announce(c);  // grow the overlay as in a real flash crowd
      }
    }

    // Retransmissions = sends beyond the minimum request+response pairs.
    const auto sent = d.network().packets_sent();
    const auto delivered = d.network().packets_delivered();
    std::printf("%-8.0f%% %9d %11d%% %11.3fs %13.3fs %10llu drops\n", loss * 100,
                viewers, completed * 100 / viewers, analysis::quantile(times, 0.5),
                analysis::quantile(times, 0.95),
                static_cast<unsigned long long>(sent - delivered));
    j.begin_object();
    j.kv("loss", loss);
    j.kv("viewers", viewers);
    j.kv("completed", completed);
    j.kv("p50_seconds", analysis::quantile(times, 0.5));
    j.kv("p95_seconds", analysis::quantile(times, 0.95));
    j.kv("dropped_packets", static_cast<std::uint64_t>(sent - delivered));
    j.end_object();
  }
  j.end_array();
  run.finish_artifact();

  std::printf("\nexpected shape: completion stays at 100%% well past 10%% loss — "
              "each round is\nidempotent and retried — while tail latency grows "
              "with the retransmission count.\n");
  return 0;
}
