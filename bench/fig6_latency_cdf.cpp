// Reproduces Fig. 6(a,b,c): CDF of protocol-round latencies during peak
// hours (18:00-24:00) vs. off-peak hours (00:00-18:00).
//
// The paper plots the 0.5..1.0 probability range over 0..5 seconds and
// finds the two curves "virtually identical" for every protocol — load does
// not shift the latency distribution. We print the same probability grid
// and report the maximum peak-vs-off-peak divergence per round.
#include <cmath>
#include <cstdio>

#include "sim_run.h"

using namespace p2pdrm;

namespace {

double print_cdf_pair(const sim::MacroSimResult& result, sim::ProtocolRound r) {
  // Read the paper's split from the run's metrics registry: bucketed
  // histograms over every recorded round, not a sampling reservoir.
  const obs::LatencyHistogram* peak_hist =
      result.registry->find_histogram(sim::split_histogram_name(r, true));
  const obs::LatencyHistogram* off_hist =
      result.registry->find_histogram(sim::split_histogram_name(r, false));
  std::printf("\n--- %s: latency CDF, peak (18-24h) vs off-peak (0-18h) ---\n",
              to_string(r).data());
  std::printf("%-6s %12s %12s\n", "CDF", "peak(s)", "off-peak(s)");
  double max_gap = 0;
  for (double q = 0.50; q <= 0.995; q += 0.025) {
    const double peak = peak_hist->quantile(q) * 1e-6;
    const double off = off_hist->quantile(q) * 1e-6;
    max_gap = std::max(max_gap, std::abs(peak - off));
    std::printf("%-6.3f %12.3f %12.3f\n", q, peak, off);
  }
  std::printf("max |peak - offpeak| gap over plotted range: %.3fs  "
              "(paper: curves virtually identical)\n", max_gap);
  std::printf("samples: peak=%llu off-peak=%llu\n",
              static_cast<unsigned long long>(peak_hist->count()),
              static_cast<unsigned long long>(off_hist->count()));
  return max_gap;
}

}  // namespace

int main(int argc, char** argv) {
  bench::SimRun run("fig6_latency_cdf", argc, argv);
  bench::print_header("Fig. 6 — latency CDFs, peak vs off-peak (1 week)");
  sim::MacroSimConfig cfg = bench::paper_config();

  bench::MacroObs obs;
  obs.attach(cfg, /*trace=*/!run.trace_out().empty());
  cfg.key_rotation.enabled = true;
  cfg = run.finalize(cfg);

  const sim::MacroSimResult result = sim::run_macro_sim(cfg);
  bench::print_run_summary(result);

  static constexpr sim::ProtocolRound kRounds[] = {
      sim::ProtocolRound::kLogin1,  sim::ProtocolRound::kLogin2,
      sim::ProtocolRound::kSwitch1, sim::ProtocolRound::kSwitch2,
      sim::ProtocolRound::kJoin};
  double gaps[5] = {};
  // Fig. 6(a): login, (b): channel switching, (c): join.
  for (std::size_t i = 0; i < 5; ++i) gaps[i] = print_cdf_pair(result, kRounds[i]);

  bench::print_obs_reports(obs, !run.trace_out().empty(), run.trace_out(),
                           run.timeseries_out());

  run.begin_artifact(cfg);
  bench::JsonWriter& j = run.json();
  j.begin_object();
  j.kv("sessions", result.sessions);
  j.kv("events", result.events);
  j.key("max_peak_offpeak_gap_seconds").begin_object();
  for (std::size_t i = 0; i < 5; ++i) {
    j.kv(std::string(to_string(kRounds[i])), gaps[i]);
  }
  j.end_object();
  j.end_object();
  run.set_runtime(result.runtime);
  run.maybe_write_prom(*result.registry);
  run.finish_artifact();
  return 0;
}
