// Reproduces Fig. 6(a,b,c): CDF of protocol-round latencies during peak
// hours (18:00-24:00) vs. off-peak hours (00:00-18:00).
//
// The paper plots the 0.5..1.0 probability range over 0..5 seconds and
// finds the two curves "virtually identical" for every protocol — load does
// not shift the latency distribution. We print the same probability grid
// and report the maximum peak-vs-off-peak divergence per round.
#include <cmath>
#include <cstdio>

#include "bench_common.h"

using namespace p2pdrm;

namespace {

void print_cdf_pair(const sim::MacroSimResult& result, sim::ProtocolRound r) {
  // Read the paper's split from the run's metrics registry: bucketed
  // histograms over every recorded round, not a sampling reservoir.
  const obs::LatencyHistogram* peak_hist =
      result.registry->find_histogram(sim::split_histogram_name(r, true));
  const obs::LatencyHistogram* off_hist =
      result.registry->find_histogram(sim::split_histogram_name(r, false));
  std::printf("\n--- %s: latency CDF, peak (18-24h) vs off-peak (0-18h) ---\n",
              to_string(r).data());
  std::printf("%-6s %12s %12s\n", "CDF", "peak(s)", "off-peak(s)");
  double max_gap = 0;
  for (double q = 0.50; q <= 0.995; q += 0.025) {
    const double peak = peak_hist->quantile(q) * 1e-6;
    const double off = off_hist->quantile(q) * 1e-6;
    max_gap = std::max(max_gap, std::abs(peak - off));
    std::printf("%-6.3f %12.3f %12.3f\n", q, peak, off);
  }
  std::printf("max |peak - offpeak| gap over plotted range: %.3fs  "
              "(paper: curves virtually identical)\n", max_gap);
  std::printf("samples: peak=%llu off-peak=%llu\n",
              static_cast<unsigned long long>(peak_hist->count()),
              static_cast<unsigned long long>(off_hist->count()));
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Fig. 6 — latency CDFs, peak vs off-peak (1 week)");
  sim::MacroSimConfig cfg = bench::paper_config();

  const std::string trace_out =
      bench::out_path(argc, argv, "--trace-out", "P2PDRM_TRACE_OUT");
  const std::string ts_out =
      bench::out_path(argc, argv, "--timeseries-out", "P2PDRM_TS_OUT");
  bench::MacroObs obs;
  obs.attach(cfg, /*trace=*/!trace_out.empty());
  cfg.key_rotation.enabled = true;

  const sim::MacroSimResult result = sim::run_macro_sim(cfg);
  bench::print_run_summary(result);

  // Fig. 6(a): login protocol (both rounds).
  print_cdf_pair(result, sim::ProtocolRound::kLogin1);
  print_cdf_pair(result, sim::ProtocolRound::kLogin2);
  // Fig. 6(b): channel switching protocol.
  print_cdf_pair(result, sim::ProtocolRound::kSwitch1);
  print_cdf_pair(result, sim::ProtocolRound::kSwitch2);
  // Fig. 6(c): join protocol.
  print_cdf_pair(result, sim::ProtocolRound::kJoin);

  bench::print_obs_reports(obs, !trace_out.empty(), trace_out, ts_out);
  return 0;
}
