// Ablation: ticket lifetimes (§IV-B, §IV-C, §IV-D tradeoffs).
//
// Channel Ticket lifetime trades Channel Manager renewal load against how
// quickly a severed account actually stops receiving (a peer only evicts
// when the ticket expires unrenewed). User Ticket lifetime trades User
// Manager re-login load against the minimum lead time for deploying a new
// viewing policy (a blackout must be configured at least one User Ticket
// lifetime ahead) and the usefulness of a stolen ticket.
#include <cstdio>

#include "bench_common.h"

using namespace p2pdrm;

int main() {
  bench::print_header("Ablation — Channel Ticket lifetime");
  std::printf("%-10s %14s %14s %16s %18s\n", "lifetime", "CM req/s", "renewals",
              "p95 SWITCH2", "cutoff delay (max)");
  for (const util::SimTime ct : {2 * util::kMinute, 5 * util::kMinute,
                                 10 * util::kMinute, 20 * util::kMinute,
                                 30 * util::kMinute}) {
    sim::MacroSimConfig cfg = bench::paper_config();
    cfg.days = 2;
    cfg.channel_ticket_lifetime = ct;
    const sim::MacroSimResult result = sim::run_macro_sim(cfg);
    const auto& sw2 = result.round(sim::ProtocolRound::kSwitch2);
    const double horizon_s = cfg.days * 86400.0;
    const double cm_rps =
        static_cast<double>(result.round(sim::ProtocolRound::kSwitch1).count +
                            sw2.count) /
        horizon_s;
    std::printf("%6lldmin %14.1f %14llu %15.3fs %17llds\n",
                static_cast<long long>(ct / util::kMinute), cm_rps,
                static_cast<unsigned long long>(result.ct_renewals),
                sw2.peak.quantile(0.95),
                static_cast<long long>(ct / util::kSecond));
  }
  std::printf("cutoff delay = how long an account that moved machines (or was "
              "revoked) can keep\nreceiving at the old peer before the "
              "unrenewed ticket expires (§IV-D).\n");

  bench::print_header("Ablation — User Ticket lifetime");
  std::printf("%-10s %14s %14s %20s\n", "lifetime", "UM req/s", "re-logins",
              "policy lead time");
  for (const util::SimTime ut : {10 * util::kMinute, 30 * util::kMinute,
                                 60 * util::kMinute, 120 * util::kMinute}) {
    sim::MacroSimConfig cfg = bench::paper_config();
    cfg.days = 2;
    cfg.user_ticket_lifetime = ut;
    const sim::MacroSimResult result = sim::run_macro_sim(cfg);
    const double horizon_s = cfg.days * 86400.0;
    const double um_rps =
        static_cast<double>(result.round(sim::ProtocolRound::kLogin1).count +
                            result.round(sim::ProtocolRound::kLogin2).count) /
        horizon_s;
    std::printf("%6lldmin %14.1f %14llu %17lldmin\n",
                static_cast<long long>(ut / util::kMinute), um_rps,
                static_cast<unsigned long long>(result.ut_renewals),
                static_cast<long long>(ut / util::kMinute));
  }
  std::printf("policy lead time = a blackout (or any policy change) must be "
              "deployed at least one\nUser Ticket lifetime before it takes "
              "effect, or outstanding tickets outlive it (§IV-C).\nthe paper "
              "recommends lifetimes below the average program length.\n");
  return 0;
}
