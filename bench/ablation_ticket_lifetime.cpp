// Ablation: ticket lifetimes (§IV-B, §IV-C, §IV-D tradeoffs).
//
// Channel Ticket lifetime trades Channel Manager renewal load against how
// quickly a severed account actually stops receiving (a peer only evicts
// when the ticket expires unrenewed). User Ticket lifetime trades User
// Manager re-login load against the minimum lead time for deploying a new
// viewing policy (a blackout must be configured at least one User Ticket
// lifetime ahead) and the usefulness of a stolen ticket.
#include <cstdio>

#include "sim_run.h"

using namespace p2pdrm;

int main(int argc, char** argv) {
  bench::SimRun run("ablation_ticket_lifetime", argc, argv);
  run.begin_artifact();
  bench::JsonWriter& j = run.json();
  j.begin_object();

  bench::print_header("Ablation — Channel Ticket lifetime");
  std::printf("%-10s %14s %14s %16s %18s\n", "lifetime", "CM req/s", "renewals",
              "p95 SWITCH2", "cutoff delay (max)");
  j.key("channel_ticket").begin_array();
  for (const util::SimTime ct : {2 * util::kMinute, 5 * util::kMinute,
                                 10 * util::kMinute, 20 * util::kMinute,
                                 30 * util::kMinute}) {
    sim::MacroSimConfig cfg = bench::paper_config();
    cfg.days = 2;
    cfg.channel_ticket_lifetime = ct;
    cfg = run.finalize(cfg);
    const sim::MacroSimResult result = sim::run_macro_sim(cfg);
    const auto& sw2 = result.round(sim::ProtocolRound::kSwitch2);
    const double horizon_s = cfg.days * 86400.0;
    const double cm_rps =
        static_cast<double>(result.round(sim::ProtocolRound::kSwitch1).count +
                            sw2.count) /
        horizon_s;
    std::printf("%6lldmin %14.1f %14llu %15.3fs %17llds\n",
                static_cast<long long>(ct / util::kMinute), cm_rps,
                static_cast<unsigned long long>(result.ct_renewals),
                sw2.peak.quantile(0.95),
                static_cast<long long>(ct / util::kSecond));
    j.begin_object();
    j.kv("lifetime_minutes", static_cast<std::int64_t>(ct / util::kMinute));
    j.kv("cm_requests_per_second", cm_rps);
    j.kv("renewals", result.ct_renewals);
    j.kv("p95_switch2_seconds", sw2.peak.quantile(0.95));
    j.kv("cutoff_delay_seconds", static_cast<std::int64_t>(ct / util::kSecond));
    j.end_object();
  }
  j.end_array();
  std::printf("cutoff delay = how long an account that moved machines (or was "
              "revoked) can keep\nreceiving at the old peer before the "
              "unrenewed ticket expires (§IV-D).\n");

  bench::print_header("Ablation — User Ticket lifetime");
  std::printf("%-10s %14s %14s %20s\n", "lifetime", "UM req/s", "re-logins",
              "policy lead time");
  j.key("user_ticket").begin_array();
  for (const util::SimTime ut : {10 * util::kMinute, 30 * util::kMinute,
                                 60 * util::kMinute, 120 * util::kMinute}) {
    sim::MacroSimConfig cfg = bench::paper_config();
    cfg.days = 2;
    cfg.user_ticket_lifetime = ut;
    cfg = run.finalize(cfg);
    const sim::MacroSimResult result = sim::run_macro_sim(cfg);
    const double horizon_s = cfg.days * 86400.0;
    const double um_rps =
        static_cast<double>(result.round(sim::ProtocolRound::kLogin1).count +
                            result.round(sim::ProtocolRound::kLogin2).count) /
        horizon_s;
    std::printf("%6lldmin %14.1f %14llu %17lldmin\n",
                static_cast<long long>(ut / util::kMinute), um_rps,
                static_cast<unsigned long long>(result.ut_renewals),
                static_cast<long long>(ut / util::kMinute));
    j.begin_object();
    j.kv("lifetime_minutes", static_cast<std::int64_t>(ut / util::kMinute));
    j.kv("um_requests_per_second", um_rps);
    j.kv("re_logins", result.ut_renewals);
    j.kv("policy_lead_minutes", static_cast<std::int64_t>(ut / util::kMinute));
    j.end_object();
  }
  j.end_array();
  j.end_object();
  run.finish_artifact();
  std::printf("policy lead time = a blackout (or any policy change) must be "
              "deployed at least one\nUser Ticket lifetime before it takes "
              "effect, or outstanding tickets outlive it (§IV-C).\nthe paper "
              "recommends lifetimes below the average program length.\n");
  return 0;
}
