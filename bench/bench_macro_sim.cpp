// Throughput + determinism bench for the sharded macro-sim engine.
//
// Runs the same (seed, shards) configuration at threads=1 and at the
// requested --threads, then reports events/sec, wall-clock, and peak RSS
// per run — and proves the tentpole guarantee by hashing every output the
// engine produces (registry dump, reservoir samples, concurrency curve,
// totals) into a digest that must be identical across thread counts.
//
// Emits BENCH_macro_sim.json (schema p2pdrm.bench.v1). Exit status is
// nonzero iff the digests diverge; the speedup figure is informational
// (a 1-core container cannot show one, CI multi-core runners can).
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "sim_run.h"

using namespace p2pdrm;

namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof(v));
}

std::uint64_t fnv1a_f64(std::uint64_t h, double v) {
  return fnv1a(h, &v, sizeof(v));
}

/// Digest over everything the engine reports: if any output byte depends on
/// the thread count, this catches it.
std::uint64_t result_digest(const sim::MacroSimResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const std::string reg = r.registry->to_string();
  h = fnv1a(h, reg.data(), reg.size());
  for (const sim::RoundTrace& t : r.rounds) {
    h = fnv1a_u64(h, t.count);
    const auto hash_res = [&h](const analysis::Reservoir& res) {
      h = fnv1a_u64(h, res.seen());
      for (const double v : res.samples()) h = fnv1a_f64(h, v);
    };
    hash_res(t.peak);
    hash_res(t.offpeak);
    for (const analysis::Reservoir& res : t.hourly) hash_res(res);
  }
  for (const double c : r.hourly_concurrency) h = fnv1a_f64(h, c);
  h = fnv1a_u64(h, r.sessions);
  h = fnv1a_u64(h, r.channel_switches);
  h = fnv1a_u64(h, r.ct_renewals);
  h = fnv1a_u64(h, r.ut_renewals);
  h = fnv1a_u64(h, r.join_retries);
  h = fnv1a_u64(h, r.logins_shed);
  h = fnv1a_u64(h, r.busy_retries);
  h = fnv1a_u64(h, r.busy_abandoned);
  h = fnv1a_f64(h, r.peak_observed_concurrency);
  h = fnv1a_f64(h, r.um_utilization);
  h = fnv1a_f64(h, r.cm_utilization);
  h = fnv1a_u64(h, r.events);
  return h;
}

std::uint64_t peak_rss_kb() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // KiB on Linux
}

struct RunStats {
  std::size_t threads;
  std::uint64_t events;
  double wall_seconds;
  double events_per_second;
  std::uint64_t digest;
  std::uint64_t rss_kb;
  // Wall-clock/imbalance telemetry; reported per run but never digested —
  // the digest covers only thread-count-invariant outputs.
  sim::MacroRuntimeStats runtime;
};

}  // namespace

int main(int argc, char** argv) {
  bench::SimRun run("macro_sim", argc, argv);
  bench::print_header("macro-sim engine: sharded throughput + determinism");

  sim::MacroSimConfig cfg = bench::paper_config();
  cfg.days = 1;
  cfg.peak_concurrent = 100000;
  cfg.threads = 4;
  cfg = run.finalize(cfg);  // applies --seed/--days/--peak/--threads/--shards

  const std::size_t want_threads = cfg.threads == 0
                                       ? std::thread::hardware_concurrency()
                                       : cfg.threads;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("# days=%d peak=%.0f shards=%zu seed=%llu  (host: %u cores)\n",
              cfg.days, cfg.peak_concurrent, cfg.shards,
              static_cast<unsigned long long>(cfg.seed), cores);

  std::vector<std::size_t> thread_counts{1};
  if (want_threads > 1) thread_counts.push_back(want_threads);

  std::printf("\n%-8s %14s %12s %14s %12s %18s\n", "threads", "events",
              "wall", "events/sec", "rss", "digest");
  std::vector<RunStats> stats;
  for (const std::size_t t : thread_counts) {
    sim::MacroSimConfig arm = cfg;
    arm.threads = t;
    const auto start = std::chrono::steady_clock::now();
    const sim::MacroSimResult result = sim::run_macro_sim(arm);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    RunStats s;
    s.threads = t;
    s.events = result.events;
    s.wall_seconds = wall;
    s.events_per_second = wall > 0 ? static_cast<double>(result.events) / wall : 0;
    s.digest = result_digest(result);
    s.rss_kb = peak_rss_kb();
    s.runtime = result.runtime;
    if (t == thread_counts.back()) run.maybe_write_prom(*result.registry);
    stats.push_back(s);
    std::printf("%-8zu %14llu %10.2fs %14.0f %9lluMB %18llx\n", t,
                static_cast<unsigned long long>(s.events), s.wall_seconds,
                s.events_per_second,
                static_cast<unsigned long long>(s.rss_kb / 1024),
                static_cast<unsigned long long>(s.digest));
  }

  bool identical = true;
  for (const RunStats& s : stats) identical &= s.digest == stats[0].digest;
  const double speedup = stats.size() > 1 && stats.back().events_per_second > 0
                             ? stats.back().events_per_second /
                                   stats[0].events_per_second
                             : 1.0;
  std::printf("\nbyte-identical across thread counts: %s\n",
              identical ? "YES" : "NO — DETERMINISM BROKEN");
  if (stats.size() > 1) {
    std::printf("speedup threads=%zu vs threads=1: %.2fx (host has %u cores)\n",
                stats.back().threads, speedup, cores);
  }

  run.begin_artifact(cfg);
  bench::JsonWriter& j = run.json();
  j.begin_object();
  j.kv("hardware_concurrency", static_cast<std::uint64_t>(cores));
  j.key("runs").begin_array();
  for (const RunStats& s : stats) {
    char digest[24];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(s.digest));
    j.begin_object();
    j.kv("threads", static_cast<std::uint64_t>(s.threads));
    j.kv("events", s.events);
    j.kv("wall_seconds", s.wall_seconds);
    j.kv("events_per_second", s.events_per_second);
    j.kv("peak_rss_kb", s.rss_kb);
    j.kv("digest", digest);
    j.key("runtime");
    bench::SimRun::write_runtime_json(j, s.runtime);
    j.end_object();
  }
  j.end_array();
  j.kv("byte_identical", identical);
  j.kv("speedup", speedup);
  j.end_object();
  run.set_runtime(stats.back().runtime);
  run.finish_artifact();

  return identical ? 0 : 1;
}
