// Crypto primitive microbenchmarks. Besides regression tracking, these
// numbers calibrate the macro simulation's ServiceCosts (what an RSA sign,
// verify, or AES packet encryption costs on real hardware).
#include <benchmark/benchmark.h>

#include "core/content.h"
#include "crypto/aes128.h"
#include "crypto/bignum.h"
#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"

using namespace p2pdrm;

namespace {

crypto::SecureRandom& rng() {
  static crypto::SecureRandom r(12345);
  return r;
}

const crypto::RsaKeyPair& keypair(std::size_t bits) {
  static std::map<std::size_t, crypto::RsaKeyPair> cache;
  auto it = cache.find(bits);
  if (it == cache.end()) {
    it = cache.emplace(bits, crypto::generate_rsa_keypair(rng(), bits)).first;
  }
  return it->second;
}

void BM_Sha256(benchmark::State& state) {
  const util::Bytes data = rng().bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const util::Bytes key = rng().bytes(32);
  const util::Bytes data = rng().bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(1024)->Arg(65536);

void BM_AesBlock(benchmark::State& state) {
  crypto::AesKey key{};
  rng().fill(key);
  const crypto::Aes128 aes(key);
  std::uint8_t block[16] = {};
  for (auto _ : state) {
    aes.encrypt_block(block, block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesBlock);

void BM_AesCtr(benchmark::State& state) {
  crypto::AesKey key{};
  rng().fill(key);
  const crypto::AesCtr ctr(key, 42);
  util::Bytes data = rng().bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ctr.crypt(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(1400)->Arg(65536);  // one MTU / one media chunk

void BM_ChaCha20Block(benchmark::State& state) {
  crypto::ChaChaKey key{};
  crypto::ChaChaNonce nonce{};
  std::uint8_t out[crypto::kChaChaBlockSize];
  std::uint32_t counter = 0;
  for (auto _ : state) {
    crypto::chacha20_block(key, nonce, counter++, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * crypto::kChaChaBlockSize);
}
BENCHMARK(BM_ChaCha20Block);

void BM_BigUIntMul(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const crypto::BigUInt a = crypto::BigUInt::random_with_bits(rng(), bits);
  const crypto::BigUInt b = crypto::BigUInt::random_with_bits(rng(), bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigUIntMul)->Arg(512)->Arg(1024)->Arg(2048);

void BM_BigUIntDivMod(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const crypto::BigUInt a = crypto::BigUInt::random_with_bits(rng(), 2 * bits);
  const crypto::BigUInt b = crypto::BigUInt::random_with_bits(rng(), bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::BigUInt::divmod(a, b));
  }
}
BENCHMARK(BM_BigUIntDivMod)->Arg(512)->Arg(1024);

void BM_ModPow(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  crypto::BigUInt m = crypto::BigUInt::random_with_bits(rng(), bits);
  if (m.is_even()) m += crypto::BigUInt(1);
  const crypto::BigUInt base = crypto::BigUInt::random_with_bits(rng(), bits - 1);
  const crypto::BigUInt exp = crypto::BigUInt::random_with_bits(rng(), bits - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::BigUInt::mod_pow(base, exp, m));
  }
}
BENCHMARK(BM_ModPow)->Arg(512)->Arg(1024);

void BM_RsaSign(benchmark::State& state) {
  const auto& kp = keypair(static_cast<std::size_t>(state.range(0)));
  const util::Bytes msg = rng().bytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_sign(kp.priv, msg));
  }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Arg(2048);

void BM_RsaVerify(benchmark::State& state) {
  const auto& kp = keypair(static_cast<std::size_t>(state.range(0)));
  const util::Bytes msg = rng().bytes(256);
  const util::Bytes sig = crypto::rsa_sign(kp.priv, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_verify(kp.pub, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024)->Arg(2048);

void BM_RsaEncrypt(benchmark::State& state) {
  const auto& kp = keypair(static_cast<std::size_t>(state.range(0)));
  const util::Bytes msg = rng().bytes(48);  // a session key
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_encrypt(kp.pub, msg, rng()));
  }
}
BENCHMARK(BM_RsaEncrypt)->Arg(512)->Arg(1024);

void BM_RsaDecrypt(benchmark::State& state) {
  const auto& kp = keypair(static_cast<std::size_t>(state.range(0)));
  const util::Bytes ct = crypto::rsa_encrypt(kp.pub, rng().bytes(48), rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_decrypt(kp.priv, ct));
  }
}
BENCHMARK(BM_RsaDecrypt)->Arg(512)->Arg(1024);

void BM_RsaKeygen(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::generate_rsa_keypair(rng(), bits));
  }
}
BENCHMARK(BM_RsaKeygen)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_ContentKeyWrapUnwrap(benchmark::State& state) {
  const core::SessionKey session = core::generate_session_key(rng());
  const core::ContentKey key = core::generate_content_key(rng(), 1, 0);
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    const util::Bytes blob = core::wrap_content_key(key, session, nonce++);
    benchmark::DoNotOptimize(core::unwrap_content_key(blob, session));
  }
}
BENCHMARK(BM_ContentKeyWrapUnwrap);

void BM_PacketEncryptDecrypt(benchmark::State& state) {
  const core::ContentKey key = core::generate_content_key(rng(), 1, 0);
  const util::Bytes payload = rng().bytes(1400);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    const core::ContentPacket p = core::encrypt_packet(key, 1, seq++, payload);
    benchmark::DoNotOptimize(core::decrypt_packet(key, p));
  }
  state.SetBytesProcessed(state.iterations() * 1400);
}
BENCHMARK(BM_PacketEncryptDecrypt);

}  // namespace

BENCHMARK_MAIN();
