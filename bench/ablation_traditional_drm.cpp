// Ablation: traditional (per-file-license) DRM vs the paper's ticket DRM
// on a linearized live channel (§I's motivating claim).
//
// Traditional DRM discretizes content into files and issues a playback
// license per file at playback time. On a linear channel, every program
// boundary is a new "file": at each boundary, EVERY current viewer hits the
// license server within the player's prefetch window — synchronized spikes.
// The paper's design issues a Channel Ticket at switch time and renews it
// on a per-viewer phase (each client renews ticket_lifetime after its own
// join), so server load is uniform; content keys travel peer-to-peer and
// cost the servers nothing.
//
// Both arms get the same server farm and the same per-request cost, so the
// difference isolated is purely the arrival pattern the two designs induce.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/stats.h"
#include "sim/latency.h"
#include "sim_run.h"

using namespace p2pdrm;

namespace {

struct ArmResult {
  double p50, p95, p99, max;
  double peak_backlog_s;
};

ArmResult run_arm(const std::vector<util::SimTime>& arrivals, util::SimTime service,
                  std::size_t servers, crypto::SecureRandom& rng) {
  std::vector<util::SimTime> sorted = arrivals;
  std::sort(sorted.begin(), sorted.end());
  sim::QueueStation station(servers);
  std::vector<double> latencies;
  latencies.reserve(sorted.size());
  double peak_backlog = 0;
  for (util::SimTime t : sorted) {
    const double jitter = 0.85 + 0.3 * rng.uniform_real();
    const util::SimTime svc =
        std::max<util::SimTime>(1, static_cast<util::SimTime>(
                                       static_cast<double>(service) * jitter));
    const util::SimTime depart = station.submit(t, svc);
    const double wait = util::to_seconds(depart - t);
    latencies.push_back(wait);
    peak_backlog = std::max(peak_backlog, wait);
  }
  std::vector<double> copy = latencies;
  return ArmResult{analysis::quantile(copy, 0.50), analysis::quantile(copy, 0.95),
                   analysis::quantile(copy, 0.99),
                   *std::max_element(latencies.begin(), latencies.end()),
                   peak_backlog};
}

}  // namespace

int main(int argc, char** argv) {
  bench::SimRun run("ablation_traditional_drm", argc, argv);
  bench::print_header("Ablation — traditional per-file DRM vs ticket DRM");

  const double scale = bench::scale_factor();
  const std::size_t viewers =
      static_cast<std::size_t>(run.num_flag("peak", 25000 * scale));
  const int hours = 3;
  const util::SimTime program_len = 30 * util::kMinute;   // program boundary
  const util::SimTime prefetch_window = 30 * util::kSecond;
  const util::SimTime ct_lifetime = 10 * util::kMinute;   // our renewal period
  const util::SimTime service = 8 * util::kMillisecond;   // license/ticket issue
  const std::size_t servers = 4;
  crypto::SecureRandom rng(run.u64_flag("seed", 99));

  std::printf("# %zu concurrent viewers, %dh of a linear channel, programs every "
              "%lld min\n# identical farm both arms: %zu servers, %.0fms per "
              "request\n",
              viewers, hours, static_cast<long long>(program_len / util::kMinute),
              servers, util::to_seconds(service) * 1000);

  // Arm A — traditional: at every program boundary, all viewers fetch a
  // license within the prefetch window.
  std::vector<util::SimTime> traditional;
  for (int b = 0; b <= hours * 2; ++b) {
    const util::SimTime boundary = static_cast<util::SimTime>(b) * program_len;
    for (std::size_t v = 0; v < viewers; ++v) {
      traditional.push_back(boundary + static_cast<util::SimTime>(
                                           rng.uniform_real() *
                                           static_cast<double>(prefetch_window)));
    }
  }

  // Arm B — ticket DRM: each viewer renews its Channel Ticket every
  // ct_lifetime starting from its own (uniform) phase.
  std::vector<util::SimTime> ticketed;
  const util::SimTime horizon = static_cast<util::SimTime>(hours) * util::kHour;
  for (std::size_t v = 0; v < viewers; ++v) {
    const util::SimTime phase = static_cast<util::SimTime>(
        rng.uniform_real() * static_cast<double>(ct_lifetime));
    for (util::SimTime t = phase; t < horizon; t += ct_lifetime) {
      ticketed.push_back(t);
    }
  }

  const ArmResult trad = run_arm(traditional, service, servers, rng);
  const ArmResult tick = run_arm(ticketed, service, servers, rng);

  std::printf("\n%-28s %10s %10s %10s %10s\n", "arm (requests)", "p50", "p95",
              "p99", "max");
  std::printf("%-28s %9.3fs %9.3fs %9.3fs %9.3fs\n",
              ("traditional (" + std::to_string(traditional.size()) + ")").c_str(),
              trad.p50, trad.p95, trad.p99, trad.max);
  std::printf("%-28s %9.3fs %9.3fs %9.3fs %9.3fs\n",
              ("ticket DRM  (" + std::to_string(ticketed.size()) + ")").c_str(),
              tick.p50, tick.p95, tick.p99, tick.max);

  std::printf("\np99 ratio traditional/ticket: %.1fx\n",
              tick.p99 > 0 ? trad.p99 / tick.p99 : 0.0);

  run.begin_artifact();
  bench::JsonWriter& j = run.json();
  const auto emit_arm = [&j](const char* name, const ArmResult& a,
                             std::size_t requests) {
    j.key(name).begin_object();
    j.kv("requests", static_cast<std::uint64_t>(requests));
    j.kv("p50_seconds", a.p50).kv("p95_seconds", a.p95);
    j.kv("p99_seconds", a.p99).kv("max_seconds", a.max);
    j.end_object();
  };
  j.begin_object();
  emit_arm("traditional", trad, traditional.size());
  emit_arm("ticket_drm", tick, ticketed.size());
  j.kv("p99_ratio", tick.p99 > 0 ? trad.p99 / tick.p99 : 0.0);
  j.end_object();
  run.finish_artifact();
  std::printf("expected shape: traditional p99 explodes at every program "
              "boundary;\nticket DRM stays near the bare service time because "
              "renewals are phase-staggered\nand content keys never touch the "
              "servers (they flow peer-to-peer).\n");
  return 0;
}
