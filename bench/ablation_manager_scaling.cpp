// Ablation: manager farm size (§V's stateless-farm claim).
//
// Because User/Channel Manager requests are atomic and stateless, a
// logical manager can be a farm behind one address. This bench fixes the
// workload (paper-scale week, heavier RSA cost so a single box saturates)
// and sweeps the farm size: latency should collapse to the flat,
// load-independent profile once capacity clears the peak — and degrade
// into load-tracking queueing when it does not.
#include <cmath>
#include <cstdio>

#include "sim_run.h"

using namespace p2pdrm;

int main(int argc, char** argv) {
  bench::SimRun run("ablation_manager_scaling", argc, argv);
  bench::print_header("Ablation — User Manager farm size under peak load");

  std::printf("%-6s %12s %12s %12s %12s %10s %12s\n", "farm", "p50 LOGIN2",
              "p95 LOGIN2", "p99 LOGIN2", "mean util", "corr(r)", "verdict");

  run.begin_artifact();
  bench::JsonWriter& j = run.json();
  j.begin_array();
  for (const std::size_t farm : {1u, 2u, 4u, 8u}) {
    sim::MacroSimConfig cfg = bench::paper_config();
    cfg.days = 3;  // enough diurnal cycles for the correlation
    cfg.user_manager_servers = farm;
    // 2048-bit-class signing plus DB work: one server cannot clear the peak.
    cfg.costs.login2 = 60 * util::kMillisecond;
    cfg = run.finalize(cfg);

    const sim::MacroSimResult result = sim::run_macro_sim(cfg);
    const auto& trace = result.round(sim::ProtocolRound::kLogin2);
    const auto corr = analysis::pearson(trace.hourly_median(),
                                        result.hourly_concurrency);
    const double r = corr.value_or(0.0);
    std::printf("%-6zu %11.3fs %11.3fs %11.3fs %12.4f %+10.3f %12s\n", farm,
                trace.peak.quantile(0.5), trace.peak.quantile(0.95),
                trace.peak.quantile(0.99), result.um_utilization, r,
                std::abs(r) < 0.3 ? "flat" : "load-bound");

    j.begin_object();
    j.kv("farm", static_cast<std::uint64_t>(farm));
    j.kv("p50_login2_seconds", trace.peak.quantile(0.5));
    j.kv("p95_login2_seconds", trace.peak.quantile(0.95));
    j.kv("p99_login2_seconds", trace.peak.quantile(0.99));
    j.kv("um_utilization", result.um_utilization);
    j.kv("pearson_r", r);
    j.kv("verdict", std::abs(r) < 0.3 ? "flat" : "load-bound");
    j.end_object();
  }
  j.end_array();
  run.finish_artifact();

  std::printf("\nexpected shape: undersized farms queue at the evening peak "
              "(latency tracks load,\nlarge r); once the farm clears peak "
              "demand, latency flattens and r drops toward 0 —\nthe regime the "
              "paper's production deployment operated in with 2 UMs.\n");
  return 0;
}
