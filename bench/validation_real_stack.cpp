// Cross-validation of the macro model on the REAL protocol stack — actual
// RSA/AES exchanges through the real managers — in two modes:
//
//   --transport=thread (default): the deployment runs on the multithreaded
//     live transport (one event loop per node group, monotonic-clock
//     timers) and N driver threads push real concurrent sessions through
//     the full five-round protocol (LOGIN1/LOGIN2/SWITCH1/SWITCH2/JOIN).
//     Reports genuine wall-clock req/s and latency percentiles and writes
//     a BENCH_real_stack.json artifact. Exit code is nonzero if any
//     protocol round failed — this is the live-stack correctness gate.
//
//   --transport=sim: the historical deterministic validation — a session
//     population driven by a compressed diurnal curve (arrival rate
//     swinging 6x over two simulated hours) logs in, switches, joins, and
//     auto-renews; per-bucket median latencies are correlated with
//     concurrency, exactly like bench/fig5_protocol_latency does for the
//     calibrated model (expect r ~ 0: flat latency under the load swing).
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/stats.h"
#include "bench_common.h"
#include "net/deployment.h"
#include "obs/flight_recorder.h"
#include "obs/runtime.h"
#include "transport/thread_transport.h"

using namespace p2pdrm;

namespace {

std::string arg_string(int argc, char** argv, const char* flag,
                       const std::string& fallback) {
  const std::string prefix = std::string(flag) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.compare(0, prefix.size(), prefix) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return fallback;
}

std::size_t arg_size(int argc, char** argv, const char* flag,
                     std::size_t fallback) {
  const std::string v = arg_string(argc, argv, flag, "");
  if (v.empty()) return fallback;
  const unsigned long long n = std::strtoull(v.c_str(), nullptr, 10);
  return n == 0 ? fallback : static_cast<std::size_t>(n);
}

// --- threaded mode: concurrent sessions against the live transport ---

int run_thread(int argc, char** argv) {
  const std::size_t drivers =
      std::max<std::size_t>(1, arg_size(argc, argv, "--threads", 4));
  const std::size_t sessions = arg_size(argc, argv, "--sessions", 120);
  const std::size_t loops = arg_size(argc, argv, "--loops", 4);
  std::string out = bench::out_path(argc, argv, "--bench-out", "P2PDRM_BENCH_OUT");
  if (out.empty()) out = "BENCH_real_stack.json";

  bench::print_header("Validation — real stack, threaded transport (" +
                      std::to_string(drivers) + " driver threads, " +
                      std::to_string(sessions) + " sessions)");

  // Post-mortem + profiling hooks, both opt-in via environment: the flight
  // recorder dumps structured event rings if the live stack crashes, the
  // profiler writes collapsed stacks + a Chrome trace at exit.
  if (obs::FlightRecorder::global().arm_from_env()) {
    std::printf("# flight recorder armed -> %s\n",
                obs::FlightRecorder::global().dump_path());
  }
  const std::string profile_out = obs::Profiler::enable_global_from_env();

  net::DeploymentConfig cfg;
  cfg.seed = 99;
  cfg.transport = net::TransportKind::kThread;
  cfg.transport_threads = loops;
  // Tight LAN-ish links: the live bench measures real stack throughput on
  // wall-clock time; the paper's WAN latency curve is the sim mode's job.
  cfg.default_link.latency.floor = 1 * util::kMillisecond;
  cfg.default_link.latency.median = 3 * util::kMillisecond;
  cfg.default_link.latency.sigma = 0.3;
  cfg.default_link.loss = 0.0;
  cfg.request_timeout = 2 * util::kSecond;
  // Every session JOINs channel 1; the root must be able to admit them all
  // even before announced peers start absorbing children.
  cfg.root_peer_capacity = sessions + 8;
  net::Deployment d(cfg);

  const geo::RegionId region = d.geo().region_at(0);
  d.add_regional_channel(1, "validation", region);
  d.start_channel_server(1);
  d.add_user("v@example.com", "pw");

  // Client configs (and the clients themselves) are minted on the main
  // thread: make_client_config mutates the deployment's rng and node
  // counter and is control-plane-only on a live transport.
  std::vector<std::unique_ptr<net::AsyncClient>> clients;
  clients.reserve(sessions);
  crypto::SecureRandom rng(5);
  for (std::size_t i = 0; i < sessions; ++i) {
    clients.push_back(std::make_unique<net::AsyncClient>(
        d.make_client_config("v@example.com", "pw", region), d.network(),
        crypto::SecureRandom(rng.next_u64())));
  }

  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> completed{0};

  const auto wall0 = std::chrono::steady_clock::now();
  // Each driver walks its stride of the session list, keeping exactly one
  // of its sessions in flight at a time — so the deployment sees `drivers`
  // concurrent full-protocol sessions. All protocol work runs on the
  // owning client's event loop; the driver only posts the kickoff and
  // waits on the completion future.
  const auto drive = [&](std::size_t start) {
    for (std::size_t i = start; i < sessions; i += drivers) {
      net::AsyncClient* c = clients[i].get();
      std::promise<core::DrmError> done;
      std::future<core::DrmError> fut = done.get_future();
      d.network().post(c->config().node, 0, [c, &d, &done] {
        c->login([c, &d, &done](core::DrmError err) {
          if (err != core::DrmError::kOk) {
            done.set_value(err);
            return;
          }
          c->switch_channel(1, [c, &d, &done](core::DrmError err2) {
            if (err2 == core::DrmError::kOk) d.announce(*c);
            done.set_value(err2);
          });
        });
      });
      const core::DrmError result = fut.get();
      if (result == core::DrmError::kOk) {
        completed.fetch_add(1, std::memory_order_relaxed);
      } else {
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "session %zu failed: %s\n", i,
                     std::string(core::to_string(result)).c_str());
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(drivers);
  for (std::size_t t = 0; t < drivers; ++t) pool.emplace_back(drive, t);
  for (std::thread& t : pool) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();

  // Stop the loops before harvesting: client state is loop-confined and
  // only safe to read once the transport is quiescent.
  d.transport().shutdown();

  // Event-loop telemetry: with the loops joined, every executed task has
  // exactly one scheduling-latency sample (histogram count == tasks).
  std::vector<obs::LoopStats> loop_stats;
  obs::LatencyHistogram sched;
  if (const auto* threaded =
          dynamic_cast<const transport::ThreadTransport*>(&d.transport())) {
    loop_stats = threaded->loop_stats();
    sched = threaded->sched_latency();
  }

  std::array<std::vector<double>, 5> lat;
  std::uint64_t rounds_ok = 0, rounds_failed = 0, retransmits = 0;
  for (const std::unique_ptr<net::AsyncClient>& c : clients) {
    retransmits += c->retransmits();
    for (const client::LatencySample& s : c->feedback_log()) {
      if (!s.success) {
        ++rounds_failed;
        continue;
      }
      ++rounds_ok;
      lat[static_cast<std::size_t>(s.round)].push_back(
          util::to_seconds(s.latency) * 1000.0);  // ms
    }
  }
  const double rps = wall_s > 0 ? static_cast<double>(rounds_ok) / wall_s : 0;

  std::printf("# %llu/%zu sessions completed, %llu protocol errors, "
              "%llu retransmits\n",
              static_cast<unsigned long long>(completed.load()), sessions,
              static_cast<unsigned long long>(protocol_errors.load()),
              static_cast<unsigned long long>(retransmits));
  std::printf("# wall time %.2fs — %.1f protocol rounds/s (%llu rounds, "
              "real RSA-512 crypto end to end)\n\n",
              wall_s, rps, static_cast<unsigned long long>(rounds_ok));
  std::printf("%-8s %8s %10s %10s %10s\n", "round", "count", "p50(ms)",
              "p95(ms)", "p99(ms)");
  for (std::size_t r = 0; r < 5; ++r) {
    std::printf("%-8s %8zu %10.2f %10.2f %10.2f\n",
                to_string(static_cast<client::Round>(r)).data(), lat[r].size(),
                analysis::quantile(lat[r], 0.50),
                analysis::quantile(lat[r], 0.95),
                analysis::quantile(lat[r], 0.99));
  }

  if (!loop_stats.empty()) {
    std::printf("\n%-8s %10s %10s %10s %6s %10s %10s\n", "loop", "tasks",
                "busy(ms)", "idle(ms)", "util", "ready_pk", "timer_pk");
    for (std::size_t i = 0; i < loop_stats.size(); ++i) {
      const obs::LoopStats& ls = loop_stats[i];
      std::printf("%-8zu %10llu %10.1f %10.1f %5.0f%% %10lld %10lld\n", i,
                  static_cast<unsigned long long>(ls.tasks),
                  static_cast<double>(ls.busy_us) / 1000.0,
                  static_cast<double>(ls.idle_us) / 1000.0,
                  ls.utilization() * 100.0,
                  static_cast<long long>(ls.ready_peak),
                  static_cast<long long>(ls.timer_peak));
    }
    std::printf("sched latency: p50 %.0fus p95 %.0fus p99 %.0fus (%llu samples)\n",
                sched.p50(), sched.p95(), sched.p99(),
                static_cast<unsigned long long>(sched.count()));
  }

  bench::JsonWriter j;
  j.begin_object()
      .kv("bench", "validation_real_stack")
      .kv("transport", "thread")
      .kv("driver_threads", static_cast<std::uint64_t>(drivers))
      .kv("event_loops", static_cast<std::uint64_t>(d.transport().groups()))
      .kv("sessions", static_cast<std::uint64_t>(sessions))
      .kv("sessions_completed", completed.load())
      .kv("protocol_errors", protocol_errors.load())
      .kv("rounds_ok", rounds_ok)
      .kv("rounds_failed", rounds_failed)
      .kv("retransmits", retransmits)
      .kv("wall_seconds", wall_s)
      .kv("requests_per_second", rps);
  j.key("loops").begin_array();
  for (std::size_t i = 0; i < loop_stats.size(); ++i) {
    const obs::LoopStats& ls = loop_stats[i];
    j.begin_object()
        .kv("loop", static_cast<std::uint64_t>(i))
        .kv("tasks", ls.tasks)
        .kv("timers_fired", ls.timers_fired)
        .kv("busy_us", ls.busy_us)
        .kv("idle_us", ls.idle_us)
        .kv("utilization", ls.utilization())
        .kv("ready_peak", ls.ready_peak)
        .kv("timer_peak", ls.timer_peak)
        .end_object();
  }
  j.end_array();
  j.key("sched_latency_us")
      .begin_object()
      .kv("count", sched.count())
      .kv("p50", sched.p50())
      .kv("p95", sched.p95())
      .kv("p99", sched.p99())
      .end_object();
  j.key("rounds").begin_array();
  for (std::size_t r = 0; r < 5; ++r) {
    j.begin_object()
        .kv("round", std::string(to_string(static_cast<client::Round>(r))))
        .kv("count", static_cast<std::uint64_t>(lat[r].size()))
        .kv("p50_ms", analysis::quantile(lat[r], 0.50))
        .kv("p95_ms", analysis::quantile(lat[r], 0.95))
        .kv("p99_ms", analysis::quantile(lat[r], 0.99))
        .end_object();
  }
  j.end_array().end_object();
  bench::write_file(out, j.str());

  if (!profile_out.empty()) {
    obs::Profiler& prof = obs::Profiler::global();
    prof.disable();
    obs::write_text_file(profile_out, prof.collapsed());
    obs::write_text_file(profile_out + ".trace.json", prof.chrome_trace());
    std::printf("# profiler output written to %s (+.trace.json)\n",
                profile_out.c_str());
  }

  if (protocol_errors.load() != 0) {
    std::fprintf(stderr, "FAIL: %llu protocol errors on the live stack\n",
                 static_cast<unsigned long long>(protocol_errors.load()));
    return 1;
  }
  std::printf("\nPASS: every session completed the full five-round protocol "
              "on the threaded transport\n");
  return 0;
}

// --- sim mode: the historical diurnal-swing validation (deterministic) ---

struct Session {
  std::unique_ptr<net::AsyncClient> client;
  util::SimTime end_time = 0;
  bool active = false;
};

int run_sim() {
  std::printf("\n=== Validation — real stack vs calibrated model (flat latency "
              "under load swing) ===\n");

  net::DeploymentConfig cfg;
  cfg.seed = 99;
  cfg.default_link.latency.floor = 15 * util::kMillisecond;
  cfg.default_link.latency.median = 60 * util::kMillisecond;
  cfg.default_link.latency.sigma = 0.5;
  cfg.processing.light = 1 * util::kMillisecond;
  cfg.processing.heavy = 8 * util::kMillisecond;
  net::Deployment d(cfg);
  const geo::RegionId region = d.geo().region_at(0);
  d.add_regional_channel(1, "validation", region);
  d.start_channel_server(1);
  d.add_user("v@example.com", "pw");

  // Compressed diurnal curve: rate(t) swings 1x..6x over two hours.
  const util::SimTime horizon = 2 * util::kHour;
  const auto rate_per_min = [&](util::SimTime t) {
    const double phase = static_cast<double>(t) / static_cast<double>(horizon);
    return 1.5 + 4.5 * (0.5 - 0.5 * std::cos(2 * 3.14159265 * phase));  // 1.5..6
  };

  std::deque<Session> sessions;
  crypto::SecureRandom rng(5);
  std::int64_t concurrency = 0;

  // Concurrency tracking per 10-minute bucket (time-weighted).
  const std::size_t buckets = static_cast<std::size_t>(horizon / (10 * util::kMinute));
  std::vector<double> bucket_conc(buckets, 0);
  util::SimTime last_change = 0;
  const auto track = [&](util::SimTime now, int delta) {
    util::SimTime t = last_change;
    while (t < now) {
      const std::size_t b = static_cast<std::size_t>(t / (10 * util::kMinute));
      const util::SimTime bucket_end =
          static_cast<util::SimTime>(b + 1) * 10 * util::kMinute;
      const util::SimTime span = std::min(now, bucket_end) - t;
      if (b < buckets) {
        bucket_conc[b] += static_cast<double>(concurrency) * static_cast<double>(span);
      }
      t += span;
    }
    last_change = now;
    concurrency += delta;
  };

  // Arrival loop driven inside the simulation.
  std::function<void()> schedule_arrival = [&] {
    const double gap_min = rng.exponential(rate_per_min(d.sim().now()));
    const util::SimTime next =
        std::max<util::SimTime>(util::kSecond, util::seconds(gap_min * 60));
    d.sim().schedule(next, [&] {
      if (d.sim().now() >= horizon) return;
      schedule_arrival();

      sessions.push_back({});
      Session& s = sessions.back();
      s.client = std::make_unique<net::AsyncClient>(
          d.make_client_config("v@example.com", "pw", region), d.network(),
          crypto::SecureRandom(rng.next_u64()));
      s.client->enable_auto_renewal();
      s.end_time = d.sim().now() + static_cast<util::SimTime>(rng.lognormal(
                                       std::log(15.0 * 60 * 1000000), 0.7));
      s.active = true;
      track(d.sim().now(), +1);
      net::AsyncClient* c = s.client.get();
      Session* sp = &s;
      c->login([c, sp, &d, &track](core::DrmError err) {
        if (err != core::DrmError::kOk) return;
        c->switch_channel(1, [c, sp, &d, &track](core::DrmError err2) {
          if (err2 == core::DrmError::kOk) d.announce(*c);
          // Session end.
          const util::SimTime remaining =
              std::max<util::SimTime>(1, sp->end_time - d.sim().now());
          d.sim().schedule(remaining, [c, sp, &d, &track] {
            if (!sp->active) return;
            sp->active = false;
            track(d.sim().now(), -1);
            c->leave();
          });
        });
      });
    });
  };
  schedule_arrival();
  d.run_until(horizon);
  track(horizon, 0);

  // Harvest feedback logs into per-bucket reservoirs per round.
  std::array<std::vector<std::vector<double>>, 5> lat;
  for (auto& per_round : lat) per_round.assign(buckets, {});
  std::uint64_t total_rounds = 0;
  for (const Session& s : sessions) {
    for (const client::LatencySample& sample : s.client->feedback_log()) {
      if (!sample.success) continue;
      const std::size_t b =
          static_cast<std::size_t>(sample.started / (10 * util::kMinute));
      if (b >= buckets) continue;
      lat[static_cast<std::size_t>(sample.round)][b].push_back(
          util::to_seconds(sample.latency));
      ++total_rounds;
    }
  }
  for (double& v : bucket_conc) v /= static_cast<double>(10 * util::kMinute);

  std::printf("# %zu sessions, %llu successful protocol rounds, real RSA-512 "
              "crypto end to end\n\n",
              sessions.size(), static_cast<unsigned long long>(total_rounds));
  std::printf("%-8s %10s %10s %10s %10s %10s %10s\n", "bucket", "users",
              "LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2", "JOIN");
  for (std::size_t b = 0; b < buckets; ++b) {
    std::printf("%-8zu %10.1f", b, bucket_conc[b]);
    for (std::size_t r = 0; r < 5; ++r) {
      std::printf(" %9.3fs", analysis::median(lat[r][b]));
    }
    std::printf("\n");
  }

  std::printf("\ncorrelation of median latency with concurrency (expect ~0, as "
              "in Fig. 5;\nsmall-sample buckets excluded — at this scale r is "
              "noisy, the flat table above\nis the result):\n");
  for (std::size_t r = 0; r < 5; ++r) {
    std::vector<double> medians, conc;
    for (std::size_t b = 0; b < buckets; ++b) {
      if (lat[r][b].size() < 20) continue;  // too thin to trust a median
      medians.push_back(analysis::median(lat[r][b]));
      conc.push_back(bucket_conc[b]);
    }
    const auto corr = analysis::pearson(medians, conc);
    std::printf("  %-8s r = %+.3f   (%zu buckets)\n",
                to_string(static_cast<client::Round>(r)).data(),
                corr.value_or(0.0), medians.size());
  }
  std::printf("\nconcurrency swing over the run: %.0f .. %.0f users\n",
              *std::min_element(bucket_conc.begin(), bucket_conc.end()),
              *std::max_element(bucket_conc.begin(), bucket_conc.end()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string transport = arg_string(argc, argv, "--transport", "thread");
  if (transport == "sim") return run_sim();
  if (transport != "thread") {
    std::fprintf(stderr, "unknown --transport=%s (want sim|thread)\n",
                 transport.c_str());
    return 2;
  }
  return run_thread(argc, argv);
}
