// Cross-validation: the macro simulation's headline result (manager latency
// flat across a big concurrency swing) re-measured on the REAL protocol
// stack — actual RSA/AES exchanges through the real managers over the
// simulated network — at a small scale.
//
// A session population driven by a compressed diurnal curve (arrival rate
// swinging 6x over two simulated hours) logs in, switches, joins, and
// auto-renews; we bucket the feedback-log latencies by 10-minute windows
// and correlate the per-bucket medians with concurrency, exactly like
// bench/fig5_protocol_latency does for the calibrated model.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include <deque>

#include "analysis/stats.h"
#include "net/deployment.h"

using namespace p2pdrm;

namespace {

struct Session {
  std::unique_ptr<net::AsyncClient> client;
  util::SimTime end_time = 0;
  bool active = false;
};

}  // namespace

int main() {
  std::printf("\n=== Validation — real stack vs calibrated model (flat latency "
              "under load swing) ===\n");

  net::DeploymentConfig cfg;
  cfg.seed = 99;
  cfg.default_link.latency.floor = 15 * util::kMillisecond;
  cfg.default_link.latency.median = 60 * util::kMillisecond;
  cfg.default_link.latency.sigma = 0.5;
  cfg.processing.light = 1 * util::kMillisecond;
  cfg.processing.heavy = 8 * util::kMillisecond;
  net::Deployment d(cfg);
  const geo::RegionId region = d.geo().region_at(0);
  d.add_regional_channel(1, "validation", region);
  d.start_channel_server(1);
  d.add_user("v@example.com", "pw");

  // Compressed diurnal curve: rate(t) swings 1x..6x over two hours.
  const util::SimTime horizon = 2 * util::kHour;
  const auto rate_per_min = [&](util::SimTime t) {
    const double phase = static_cast<double>(t) / static_cast<double>(horizon);
    return 1.5 + 4.5 * (0.5 - 0.5 * std::cos(2 * 3.14159265 * phase));  // 1.5..6
  };

  std::deque<Session> sessions;
  crypto::SecureRandom rng(5);
  std::int64_t concurrency = 0;

  // Concurrency tracking per 10-minute bucket (time-weighted).
  const std::size_t buckets = static_cast<std::size_t>(horizon / (10 * util::kMinute));
  std::vector<double> bucket_conc(buckets, 0);
  util::SimTime last_change = 0;
  const auto track = [&](util::SimTime now, int delta) {
    util::SimTime t = last_change;
    while (t < now) {
      const std::size_t b = static_cast<std::size_t>(t / (10 * util::kMinute));
      const util::SimTime bucket_end =
          static_cast<util::SimTime>(b + 1) * 10 * util::kMinute;
      const util::SimTime span = std::min(now, bucket_end) - t;
      if (b < buckets) {
        bucket_conc[b] += static_cast<double>(concurrency) * static_cast<double>(span);
      }
      t += span;
    }
    last_change = now;
    concurrency += delta;
  };

  // Arrival loop driven inside the simulation.
  std::function<void()> schedule_arrival = [&] {
    const double gap_min = rng.exponential(rate_per_min(d.sim().now()));
    const util::SimTime next =
        std::max<util::SimTime>(util::kSecond, util::seconds(gap_min * 60));
    d.sim().schedule(next, [&] {
      if (d.sim().now() >= horizon) return;
      schedule_arrival();

      sessions.push_back({});
      Session& s = sessions.back();
      s.client = std::make_unique<net::AsyncClient>(
          d.make_client_config("v@example.com", "pw", region), d.network(),
          crypto::SecureRandom(rng.next_u64()));
      s.client->enable_auto_renewal();
      s.end_time = d.sim().now() + static_cast<util::SimTime>(rng.lognormal(
                                       std::log(15.0 * 60 * 1000000), 0.7));
      s.active = true;
      track(d.sim().now(), +1);
      net::AsyncClient* c = s.client.get();
      Session* sp = &s;
      c->login([c, sp, &d, &track](core::DrmError err) {
        if (err != core::DrmError::kOk) return;
        c->switch_channel(1, [c, sp, &d, &track](core::DrmError err2) {
          if (err2 == core::DrmError::kOk) d.announce(*c);
          // Session end.
          const util::SimTime remaining =
              std::max<util::SimTime>(1, sp->end_time - d.sim().now());
          d.sim().schedule(remaining, [c, sp, &d, &track] {
            if (!sp->active) return;
            sp->active = false;
            track(d.sim().now(), -1);
            c->leave();
          });
        });
      });
    });
  };
  schedule_arrival();
  d.run_until(horizon);
  track(horizon, 0);

  // Harvest feedback logs into per-bucket reservoirs per round.
  std::array<std::vector<std::vector<double>>, 5> lat;
  for (auto& per_round : lat) per_round.assign(buckets, {});
  std::uint64_t total_rounds = 0;
  for (const Session& s : sessions) {
    for (const client::LatencySample& sample : s.client->feedback_log()) {
      if (!sample.success) continue;
      const std::size_t b =
          static_cast<std::size_t>(sample.started / (10 * util::kMinute));
      if (b >= buckets) continue;
      lat[static_cast<std::size_t>(sample.round)][b].push_back(
          util::to_seconds(sample.latency));
      ++total_rounds;
    }
  }
  for (double& v : bucket_conc) v /= static_cast<double>(10 * util::kMinute);

  std::printf("# %zu sessions, %llu successful protocol rounds, real RSA-512 "
              "crypto end to end\n\n",
              sessions.size(), static_cast<unsigned long long>(total_rounds));
  std::printf("%-8s %10s %10s %10s %10s %10s %10s\n", "bucket", "users",
              "LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2", "JOIN");
  for (std::size_t b = 0; b < buckets; ++b) {
    std::printf("%-8zu %10.1f", b, bucket_conc[b]);
    for (std::size_t r = 0; r < 5; ++r) {
      std::printf(" %9.3fs", analysis::median(lat[r][b]));
    }
    std::printf("\n");
  }

  std::printf("\ncorrelation of median latency with concurrency (expect ~0, as "
              "in Fig. 5;\nsmall-sample buckets excluded — at this scale r is "
              "noisy, the flat table above\nis the result):\n");
  for (std::size_t r = 0; r < 5; ++r) {
    std::vector<double> medians, conc;
    for (std::size_t b = 0; b < buckets; ++b) {
      if (lat[r][b].size() < 20) continue;  // too thin to trust a median
      medians.push_back(analysis::median(lat[r][b]));
      conc.push_back(bucket_conc[b]);
    }
    const auto corr = analysis::pearson(medians, conc);
    std::printf("  %-8s r = %+.3f   (%zu buckets)\n",
                to_string(static_cast<client::Round>(r)).data(),
                corr.value_or(0.0), medians.size());
  }
  std::printf("\nconcurrency swing over the run: %.0f .. %.0f users\n",
              *std::min_element(bucket_conc.begin(), bucket_conc.end()),
              *std::max_element(bucket_conc.begin(), bucket_conc.end()));
  return 0;
}
