// Ablation: fault resilience with and without client failover.
//
// Runs the same scripted chaos scenario — a User Manager and a Channel
// Manager instance crash, a 30s backend partition, and a churn storm —
// against two fleets that differ in exactly one bit: AsyncClient's
// operation-level failover + automatic re-login/re-join (Config::
// resilience). Per protocol round it reports the availability seen by the
// viewers' feedback logs, plus the recovery bill (failovers, re-logins,
// rejoins) and the p50/p99 rejoin latency. The deterministic fault engine
// guarantees both arms face the exact same fault timeline.
#include <cstdio>

#include "fault/fault_engine.h"
#include "fault/report.h"
#include "net/deployment.h"
#include "sim_run.h"

using namespace p2pdrm;

namespace {

constexpr util::ChannelId kChannel = 1;
constexpr std::size_t kViewers = 12;

fault::ResilienceReport run_arm(bool resilience) {
  net::DeploymentConfig cfg;
  cfg.seed = 11;
  cfg.default_link.latency.floor = 10 * util::kMillisecond;
  cfg.default_link.latency.median = 40 * util::kMillisecond;
  cfg.default_link.latency.sigma = 0.4;
  cfg.default_link.loss = 0.01;
  cfg.processing.light = 1 * util::kMillisecond;
  cfg.processing.heavy = 8 * util::kMillisecond;
  cfg.um_instances = 2;
  cfg.cm_instances = 2;
  cfg.tracker_stale_age = 2 * util::kMinute;
  cfg.client_resilience = resilience;

  net::Deployment d(cfg);
  const geo::RegionId region = d.geo().region_at(0);
  d.add_regional_channel(kChannel, "event", region);
  d.start_channel_server(kChannel);

  for (std::size_t i = 0; i < kViewers; ++i) {
    const std::string email = "viewer-" + std::to_string(i) + "@example.com";
    d.add_user(email, "pw");
    net::AsyncClient& client = d.add_client(email, "pw", region);
    bool done = false;
    client.login([&](core::DrmError err) {
      if (err != core::DrmError::kOk) {
        done = true;
        return;
      }
      client.switch_channel(kChannel, [&](core::DrmError) { done = true; });
    });
    const util::SimTime deadline = d.sim().now() + 5 * util::kMinute;
    while (!done && d.sim().now() < deadline && d.sim().step()) {
    }
    d.announce(client);
    client.enable_auto_renewal();
  }

  const fault::FaultPlan plan = fault::FaultPlan::parse(
      "10m crash-um 0\n"
      "10m crash-cm 0 0\n"
      "20m partition * 10.254.0.0/16 30s\n"
      "25m loss * 0.5 60s\n"
      "30m churn 1 4 4\n");
  fault::FaultEngineConfig engine_cfg;
  engine_cfg.arrival_region = region;
  fault::FaultEngine engine(d, plan, engine_cfg);
  engine.arm();
  d.run_until(45 * util::kMinute);

  return fault::ResilienceReport::collect(d);
}

void print_arm(const char* label, const fault::ResilienceReport& r) {
  std::printf("\n--- %s ---\n%s", label, r.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::SimRun run("ablation_fault_resilience", argc, argv);
  std::printf("\n=== Ablation — fault resilience: failover on vs off ===\n");
  std::printf("scenario: UM+CM instance crash @10m, 30s backend partition @20m,\n"
              "          50%% loss burst @25m, churn storm (4 out / 4 in) @30m\n");

  const fault::ResilienceReport off = run_arm(false);
  const fault::ResilienceReport on = run_arm(true);
  print_arm("failover OFF", off);
  print_arm("failover ON", on);

  std::printf("\n--- per-round availability delta ---\n");
  std::printf("%-8s %14s %14s\n", "round", "off", "on");
  static constexpr client::Round kRounds[] = {
      client::Round::kLogin1, client::Round::kLogin2, client::Round::kSwitch1,
      client::Round::kSwitch2, client::Round::kJoin};
  for (const client::Round round : kRounds) {
    std::printf("%-8s %13.2f%% %13.2f%%\n",
                std::string(client::to_string(round)).c_str(),
                off.round(round).availability() * 100.0,
                on.round(round).availability() * 100.0);
  }
  std::printf("\nrejoins: off=%llu on=%llu; rejoin latency on: p50=%.3fs p99=%.3fs\n",
              static_cast<unsigned long long>(off.rejoins),
              static_cast<unsigned long long>(on.rejoins),
              util::to_seconds(on.rejoin_p50()), util::to_seconds(on.rejoin_p99()));
  std::printf("sessions still valid at end: off=%zu/%zu on=%zu/%zu\n",
              off.clients_current, off.clients_total - off.clients_departed,
              on.clients_current, on.clients_total - on.clients_departed);

  run.begin_artifact();
  bench::JsonWriter& j = run.json();
  j.begin_object();
  const auto emit_arm = [&j](const char* name, const fault::ResilienceReport& r) {
    j.key(name).begin_object();
    j.key("availability").begin_object();
    for (const client::Round round : kRounds) {
      j.kv(std::string(client::to_string(round)),
           r.round(round).availability());
    }
    j.end_object();
    j.kv("rejoins", static_cast<std::uint64_t>(r.rejoins));
    j.kv("clients_current", static_cast<std::uint64_t>(r.clients_current));
    j.end_object();
  };
  emit_arm("failover_off", off);
  emit_arm("failover_on", on);
  j.kv("rejoin_p50_seconds", util::to_seconds(on.rejoin_p50()));
  j.kv("rejoin_p99_seconds", util::to_seconds(on.rejoin_p99()));
  j.end_object();
  run.finish_artifact();
  return 0;
}
