// Reproduces Fig. 5(a,b,c): median latency of the LOGIN1/LOGIN2,
// SWITCH1/SWITCH2, and JOIN protocol rounds across a simulated week,
// plotted against the total number of concurrent users — plus the in-text
// Pearson correlation coefficients (paper: -0.03..0.08 for login/switch,
// 0.13 for join).
//
// Expected shape: the concurrency curve swings by an order of magnitude
// between pre-dawn trough and evening peak while every median latency stays
// flat — the paper's stateless-manager scalability claim.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim_run.h"

using namespace p2pdrm;

namespace {

/// Per-hour median latency in seconds, read from the run's metrics registry
/// (bucketed histograms over the full population — the reservoirs they
/// replaced sampled 3000 per hour). Hours with no samples report 0.
std::vector<double> hourly_median(const sim::MacroSimResult& result,
                                  sim::ProtocolRound r) {
  std::vector<double> out;
  out.reserve(result.hourly_concurrency.size());
  for (std::size_t h = 0; h < result.hourly_concurrency.size(); ++h) {
    const obs::LatencyHistogram* hist =
        result.registry->find_histogram(sim::hourly_histogram_name(r, h));
    out.push_back(hist == nullptr || hist->empty() ? 0.0 : hist->p50() * 1e-6);
  }
  return out;
}

void print_series(const sim::MacroSimResult& result, sim::ProtocolRound a,
                  sim::ProtocolRound b, bool has_b, const char* fig) {
  std::printf("\n--- Fig. 5%s: hour-of-week series ---\n", fig);
  std::printf("%-6s %-5s %12s %14s", "day", "hour", "concurrent",
              to_string(a).data());
  if (has_b) std::printf(" %14s", to_string(b).data());
  std::printf("\n");
  const auto ma = hourly_median(result, a);
  const auto mb = hourly_median(result, b);
  for (std::size_t h = 0; h < result.hourly_concurrency.size(); ++h) {
    std::printf("d%-5zu %-5zu %12.0f %12.3fs", h / 24, h % 24,
                result.hourly_concurrency[h], ma[h]);
    if (has_b) std::printf(" %12.3fs", mb[h]);
    std::printf("\n");
  }
}

double print_correlation(const sim::MacroSimResult& result, sim::ProtocolRound r,
                         double paper_lo, double paper_hi) {
  const auto corr =
      analysis::pearson(hourly_median(result, r), result.hourly_concurrency);
  std::printf("%-8s  r = %+.3f   (paper: %+0.2f .. %+0.2f)  %s\n",
              to_string(r).data(), corr.value_or(0.0), paper_lo, paper_hi,
              (corr && *corr >= paper_lo - 0.15 && *corr <= paper_hi + 0.15)
                  ? "within band"
                  : "OUT OF BAND");
  return corr.value_or(0.0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::SimRun run("fig5_protocol_latency", argc, argv);
  bench::print_header(
      "Fig. 5 — median protocol latency vs. concurrent users (1 week)");

  sim::MacroSimConfig cfg = bench::paper_config();
  // Observability riders: SLO/load-correlation monitor and time-series
  // scraping always; span capture only when a trace sink is requested
  // (Fig 5's latency numbers are identical either way — the hooks draw no
  // randomness).
  bench::MacroObs obs;
  obs.attach(cfg, /*trace=*/!run.trace_out().empty());
  cfg.key_rotation.enabled = true;
  cfg = run.finalize(cfg);
  std::printf("# days=%d peak_concurrent=%.0f UMs=%zu CMs=%zu seed=%llu "
              "shards=%zu threads=%zu\n",
              cfg.days, cfg.peak_concurrent, cfg.user_manager_servers,
              cfg.channel_manager_servers,
              static_cast<unsigned long long>(cfg.seed), cfg.shards, cfg.threads);

  const sim::MacroSimResult result = sim::run_macro_sim(cfg);
  bench::print_run_summary(result);

  print_series(result, sim::ProtocolRound::kLogin1, sim::ProtocolRound::kLogin2, true,
               "(a) login");
  print_series(result, sim::ProtocolRound::kSwitch1, sim::ProtocolRound::kSwitch2, true,
               "(b) channel switching");
  print_series(result, sim::ProtocolRound::kJoin, sim::ProtocolRound::kJoin, false,
               "(c) join");

  std::printf("\n--- In-text: Pearson correlation, median latency vs #users ---\n");
  const double r_login1 =
      print_correlation(result, sim::ProtocolRound::kLogin1, -0.03, 0.08);
  const double r_login2 =
      print_correlation(result, sim::ProtocolRound::kLogin2, -0.03, 0.08);
  const double r_switch1 =
      print_correlation(result, sim::ProtocolRound::kSwitch1, -0.03, 0.08);
  const double r_switch2 =
      print_correlation(result, sim::ProtocolRound::kSwitch2, -0.03, 0.08);
  const double r_join =
      print_correlation(result, sim::ProtocolRound::kJoin, 0.13, 0.13);

  // Headline check: latency flat while concurrency swings.
  const double max_c = *std::max_element(result.hourly_concurrency.begin(),
                                         result.hourly_concurrency.end());
  const double min_c = *std::min_element(result.hourly_concurrency.begin(),
                                         result.hourly_concurrency.end());
  std::printf("\nconcurrency swing: %.0fx (%.0f .. %.0f)\n",
              min_c > 0 ? max_c / min_c : 0.0, min_c, max_c);

  bench::print_obs_reports(obs, !run.trace_out().empty(), run.trace_out(),
                           run.timeseries_out());

  run.begin_artifact(cfg);
  bench::JsonWriter& j = run.json();
  j.begin_object();
  j.kv("sessions", result.sessions);
  j.kv("channel_switches", result.channel_switches);
  j.kv("events", result.events);
  j.kv("peak_observed_concurrency", result.peak_observed_concurrency);
  j.kv("um_utilization", result.um_utilization);
  j.kv("cm_utilization", result.cm_utilization);
  j.kv("concurrency_swing", min_c > 0 ? max_c / min_c : 0.0);
  j.key("pearson_r").begin_object();
  j.kv("LOGIN1", r_login1).kv("LOGIN2", r_login2);
  j.kv("SWITCH1", r_switch1).kv("SWITCH2", r_switch2);
  j.kv("JOIN", r_join);
  j.end_object();
  j.end_object();
  run.set_runtime(result.runtime);
  run.maybe_write_prom(*result.registry);
  run.finish_artifact();
  return 0;
}
