// SimRun: the one way a bench binary talks to the outside world.
//
// Every fig*/ablation*/bench* executable used to hand-roll its own argv
// scanning, environment fallbacks, and artifact plumbing. SimRun collapses
// that into a single object with three responsibilities:
//
//   1. Flags — a uniform `--name=value` vocabulary shared by every bench:
//        --seed=N       override MacroSimConfig::seed
//        --days=N       override MacroSimConfig::days
//        --peak=N       override MacroSimConfig::peak_concurrent (absolute)
//        --threads=N    worker threads (0 = hardware concurrency)
//        --shards=N     channel shards (fixed per run; output depends on
//                       shards, never on threads)
//        --out=PATH     artifact path (default BENCH_<name>.json)
//        --trace-out=PATH       Chrome-trace export (env P2PDRM_TRACE_OUT)
//        --timeseries-out=PATH  metrics CSV export  (env P2PDRM_TS_OUT)
//        --prom-out=PATH        Prometheus exposition snapshot of the final
//                               registry (env P2PDRM_PROM_OUT)
//      Benches may read additional bench-specific flags through the same
//      accessors.
//
//   2. Config — `finalize(cfg)` layers the CLI overrides onto a bench-built
//      MacroSimConfig and returns `cfg.validated()`, so every run is
//      checked through the single validation entry point. When --threads
//      asks for parallelism but --shards is absent, shards defaults to a
//      fixed 8 — a constant, NOT a function of the thread count, so the
//      same seed still produces byte-identical output at any --threads.
//
//   3. Artifact — every bench emits BENCH_<name>.json with one schema:
//        { "schema": "p2pdrm.bench.v1", "bench": ..., "config": {...},
//          "results": <bench-specific>, "wall_seconds": ... }
//      `begin_artifact()` writes the envelope up to and including the
//      "results" key; the bench then writes exactly one JSON value (object
//      or array) through `json()`; `finish_artifact()` stamps the
//      wall-clock and writes the file. A bench that ran the macro-sim may
//      call `set_runtime(result.runtime)` before finish_artifact() to add a
//      "runtime" object (shard event counts, barrier-wait and imbalance
//      telemetry) to the envelope.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace p2pdrm::bench {

class SimRun {
 public:
  SimRun(std::string bench_name, int argc, char** argv)
      : name_(std::move(bench_name)), started_(std::chrono::steady_clock::now()) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.size() < 3 || arg.compare(0, 2, "--") != 0) {
        std::fprintf(stderr, "%s: ignoring argument '%s' (flags are --name=value)\n",
                     name_.c_str(), arg.c_str());
        continue;
      }
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_.push_back({arg.substr(2), "true"});
      } else {
        flags_.push_back({arg.substr(2, eq - 2), arg.substr(eq + 1)});
      }
    }
  }

  const std::string& name() const { return name_; }

  bool has(const std::string& flag) const {
    for (const Flag& f : flags_) {
      if (f.name == flag) return true;
    }
    return false;
  }

  std::string str_flag(const std::string& flag, const std::string& fallback) const {
    for (const Flag& f : flags_) {
      if (f.name == flag) return f.value;
    }
    return fallback;
  }

  double num_flag(const std::string& flag, double fallback) const {
    for (const Flag& f : flags_) {
      if (f.name == flag) return std::atof(f.value.c_str());
    }
    return fallback;
  }

  std::uint64_t u64_flag(const std::string& flag, std::uint64_t fallback) const {
    for (const Flag& f : flags_) {
      if (f.name == flag) return std::strtoull(f.value.c_str(), nullptr, 10);
    }
    return fallback;
  }

  /// Layer the uniform CLI overrides onto a bench-built config and validate.
  /// Throws std::invalid_argument (via MacroSimConfig::validated) on nonsense.
  sim::MacroSimConfig finalize(sim::MacroSimConfig cfg) const {
    cfg.seed = u64_flag("seed", cfg.seed);
    cfg.days = static_cast<int>(u64_flag("days", static_cast<std::uint64_t>(cfg.days)));
    cfg.peak_concurrent = num_flag("peak", cfg.peak_concurrent);
    cfg.threads = static_cast<std::size_t>(u64_flag("threads", cfg.threads));
    if (has("shards")) {
      cfg.shards = static_cast<std::size_t>(u64_flag("shards", cfg.shards));
    } else if (cfg.threads != 1 && cfg.shards == 1) {
      // Parallelism needs shards; pick a fixed count so the output stays a
      // pure function of (config, seed) regardless of the thread count.
      cfg.shards = kDefaultShards;
    }
    return cfg.validated();
  }

  std::string out_file() const {
    return str_flag("out", "BENCH_" + name_ + ".json");
  }
  std::string trace_out() const {
    return str_flag("trace-out", env_or_empty("P2PDRM_TRACE_OUT"));
  }
  std::string timeseries_out() const {
    return str_flag("timeseries-out", env_or_empty("P2PDRM_TS_OUT"));
  }
  std::string prom_out() const {
    return str_flag("prom-out", env_or_empty("P2PDRM_PROM_OUT"));
  }

  /// Dump a Prometheus exposition snapshot of `registry` to --prom-out /
  /// P2PDRM_PROM_OUT. No-op when neither is set.
  void maybe_write_prom(const obs::Registry& registry) const {
    const std::string path = prom_out();
    if (path.empty()) return;
    write_file(path, obs::registry_to_prometheus(registry));
  }

  JsonWriter& json() { return json_; }

  /// Open the artifact envelope for a macro-sim bench: emits schema, bench
  /// name, and the run's config block, then leaves the writer positioned at
  /// "results" for the bench to fill with one JSON value.
  void begin_artifact(const sim::MacroSimConfig& cfg) {
    begin_envelope();
    json_.key("config").begin_object();
    json_.kv("seed", static_cast<std::uint64_t>(cfg.seed));
    json_.kv("days", cfg.days);
    json_.kv("peak_concurrent", cfg.peak_concurrent);
    json_.kv("threads", static_cast<std::uint64_t>(cfg.threads));
    json_.kv("shards", static_cast<std::uint64_t>(cfg.shards));
    json_.kv("scale", scale_factor());
    json_.end_object();
    json_.key("results");
  }

  /// Same envelope for benches that do not run the macro-sim; the config
  /// block carries only the global scale knob.
  void begin_artifact() {
    begin_envelope();
    json_.key("config").begin_object();
    json_.kv("scale", scale_factor());
    json_.end_object();
    json_.key("results");
  }

  /// Record macro-sim runtime telemetry for the artifact envelope; emitted
  /// as a top-level "runtime" object by finish_artifact(). The event-count
  /// fields are deterministic; the *_seconds fields are wall-clock and must
  /// never feed a reproducibility digest.
  void set_runtime(const sim::MacroRuntimeStats& runtime) {
    runtime_ = runtime;
    have_runtime_ = true;
  }

  /// Serialize one MacroRuntimeStats as a JSON object value. Shared by the
  /// envelope and by benches that emit per-run runtime blocks.
  static void write_runtime_json(JsonWriter& j,
                                 const sim::MacroRuntimeStats& rt) {
    j.begin_object();
    j.key("shard_events").begin_array();
    for (const std::uint64_t e : rt.shard_events) j.value(e);
    j.end_array();
    j.kv("windows", rt.windows);
    j.kv("imbalance_mean", rt.imbalance_mean);
    j.kv("imbalance_max", rt.imbalance_max);
    j.kv("window_wall_seconds", rt.window_wall_seconds);
    j.kv("coordinator_wall_seconds", rt.coordinator_wall_seconds);
    j.kv("barrier_wait_seconds", rt.barrier_wait_seconds);
    j.kv("barrier_wait_fraction", rt.barrier_wait_fraction);
    j.key("worker_busy_seconds").begin_array();
    for (const double b : rt.worker_busy_seconds) j.value(b);
    j.end_array();
    j.end_object();
  }

  /// Close the envelope (the bench must have completed its "results" value),
  /// stamp the wall clock, and write the artifact file.
  void finish_artifact() {
    if (have_runtime_) {
      json_.key("runtime");
      write_runtime_json(json_, runtime_);
    }
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - started_;
    json_.kv("wall_seconds", wall.count());
    json_.end_object();
    write_file(out_file(), json_.str());
  }

  /// Elapsed wall-clock since the run started, in seconds.
  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started_)
        .count();
  }

  static constexpr std::size_t kDefaultShards = 8;

 private:
  struct Flag {
    std::string name;
    std::string value;
  };

  static std::string env_or_empty(const char* env) {
    if (const char* v = std::getenv(env)) return v;
    return {};
  }

  void begin_envelope() {
    json_.begin_object();
    json_.kv("schema", "p2pdrm.bench.v1");
    json_.kv("bench", name_);
  }

  std::string name_;
  std::vector<Flag> flags_;
  JsonWriter json_;
  sim::MacroRuntimeStats runtime_;
  bool have_runtime_ = false;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace p2pdrm::bench
