// Ablation: flash crowd at a live-event start (§I).
//
// "Live events' having well-defined start and end times leads to highly
// correlated service request arrivals ... Instead of limiting scalability,
// highly correlated viewing behavior gives P2P systems their competitive
// advantage." A crowd of extra viewers slams the system at the event start
// (on top of the normal diurnal evening); the managers' stateless ticket
// work and the self-scaling overlay absorb it without visible latency
// movement. Compare each hour's medians with and without the crowd.
#include <cstdio>

#include "sim_run.h"

using namespace p2pdrm;

int main(int argc, char** argv) {
  bench::SimRun run("ablation_flash_crowd", argc, argv);
  bench::print_header("Ablation — flash crowd at event start (day 1, 20:00)");

  sim::MacroSimConfig base = bench::paper_config();
  base.days = 2;
  base = run.finalize(base);

  sim::MacroSimConfig crowded = base;
  workload::FlashCrowd crowd;
  crowd.start = util::kDay + 20 * util::kHour;  // day 1, 20:00 — on-peak
  crowd.extra_sessions =
      static_cast<std::size_t>(0.6 * base.peak_concurrent);  // +60% instantly
  crowd.ramp = 2 * util::kMinute;
  crowded.flash_crowds.push_back(crowd);

  const sim::MacroSimResult without = sim::run_macro_sim(base);
  const sim::MacroSimResult with = sim::run_macro_sim(crowded);
  std::printf("baseline: ");
  bench::print_run_summary(without);
  std::printf("crowded:  ");
  bench::print_run_summary(with);

  std::printf("\n%-6s %12s %12s | %12s %12s | %12s %12s\n", "hour", "users(base)",
              "users(crowd)", "LOGIN2 base", "LOGIN2 crowd", "JOIN base",
              "JOIN crowd");
  const auto login2_base = without.round(sim::ProtocolRound::kLogin2).hourly_median();
  const auto login2_crowd = with.round(sim::ProtocolRound::kLogin2).hourly_median();
  const auto join_base = without.round(sim::ProtocolRound::kJoin).hourly_median();
  const auto join_crowd = with.round(sim::ProtocolRound::kJoin).hourly_median();
  for (std::size_t h = 40; h < 48; ++h) {  // day 1, 16:00-24:00
    std::printf("d1/%-4zu %12.0f %12.0f | %11.3fs %11.3fs | %11.3fs %11.3fs\n",
                h % 24, without.hourly_concurrency[h], with.hourly_concurrency[h],
                login2_base[h], login2_crowd[h], join_base[h], join_crowd[h]);
  }

  const double extra_at_peak =
      with.hourly_concurrency[44] - without.hourly_concurrency[44];
  const double login2_shift = login2_crowd[44] - login2_base[44];
  std::printf("\nat the event hour: +%.0f concurrent users, LOGIN2 median moved "
              "%+.0f ms\n", extra_at_peak, login2_shift * 1000);
  std::printf("expected shape: the crowd lifts concurrency by tens of percent "
              "within minutes while\nthe manager medians stay within noise — "
              "ticket issuance is cheap and stateless, and\nthe join load lands "
              "on the (self-scaling) peers.\n");

  // --- admission control on an undersized farm ---
  //
  // Halve the User Manager farm so the same crowd genuinely saturates it,
  // then compare letting everyone queue (the legacy model: every login —
  // fresh or renewal — eats the backlog) against shedding fresh logins with
  // BUSY once the estimated wait passes 1 s. Shedding is never silent: shed
  // viewers re-arrive after the retry-after hint, up to 5 times.
  sim::MacroSimConfig strained = crowded;
  strained.user_manager_servers = 1;
  sim::MacroSimConfig admitted = strained;
  admitted.login_admission_max_wait = 1 * util::kSecond;

  const sim::MacroSimResult queued = sim::run_macro_sim(strained);
  const sim::MacroSimResult shed = sim::run_macro_sim(admitted);
  const auto login2_queued = queued.round(sim::ProtocolRound::kLogin2).hourly_median();
  const auto login2_shed = shed.round(sim::ProtocolRound::kLogin2).hourly_median();

  bench::print_header("Undersized UM farm (1 server): admission control off vs on");
  std::printf("queued:   ");
  bench::print_run_summary(queued);
  std::printf("admitted: ");
  bench::print_run_summary(shed);
  std::printf("\n%-6s %12s %12s | %14s %14s\n", "hour", "users(off)",
              "users(on)", "LOGIN2 off", "LOGIN2 on");
  for (std::size_t h = 42; h < 47; ++h) {
    std::printf("d1/%-4zu %12.0f %12.0f | %13.3fs %13.3fs\n", h % 24,
                queued.hourly_concurrency[h], shed.hourly_concurrency[h],
                login2_queued[h], login2_shed[h]);
  }
  std::printf("\nadmission control: shed=%llu busy-retries=%llu abandoned=%llu "
              "(baseline run sheds %llu)\n",
              static_cast<unsigned long long>(shed.logins_shed),
              static_cast<unsigned long long>(shed.busy_retries),
              static_cast<unsigned long long>(shed.busy_abandoned),
              static_cast<unsigned long long>(queued.logins_shed));
  std::printf("UM utilization: off=%.2f on=%.2f\n", queued.um_utilization,
              shed.um_utilization);
  std::printf("expected shape: the crowd's arrival spike transiently outruns "
              "the halved farm\n(visible as an event-hour LOGIN2 bump with "
              "admission off and zero sheds elsewhere);\nadmission control "
              "converts that backlog into counted BUSY deferrals — shed, "
              "retried,\nor abandoned, never silently dropped — and the "
              "admitted logins keep the\nwell-provisioned median.\n");

  run.begin_artifact(crowded);
  bench::JsonWriter& j = run.json();
  j.begin_object();
  j.kv("extra_users_at_event_hour", extra_at_peak);
  j.kv("login2_median_shift_ms", login2_shift * 1000);
  j.kv("baseline_peak_concurrency", without.peak_observed_concurrency);
  j.kv("crowded_peak_concurrency", with.peak_observed_concurrency);
  j.key("undersized_admission").begin_object();
  j.kv("logins_shed", shed.logins_shed);
  j.kv("busy_retries", shed.busy_retries);
  j.kv("busy_abandoned", shed.busy_abandoned);
  j.kv("queued_um_utilization", queued.um_utilization);
  j.kv("admitted_um_utilization", shed.um_utilization);
  j.end_object();
  j.end_object();
  run.finish_artifact();
  return 0;
}
